#include "cc/timely.h"

#include <algorithm>
#include <cassert>

#include "net/network.h"

namespace ccml {

TimelyPolicy::TimelyPolicy(TimelyConfig config) : config_(config) {
  assert(config_.t_high > config_.t_low);
  assert(config_.beta > 0.0 && config_.beta <= 1.0);
  assert(config_.update_interval.is_positive());
}

void TimelyPolicy::on_flow_started(Network& net, Flow& flow) {
  if (links_.size() < net.topology().link_count()) {
    links_.resize(net.topology().link_count());
  }
  FlowState s;
  Rate line = Rate::gbps(1e9);
  for (const LinkId lid : flow.spec.route.links) {
    line = std::min(line, net.effective_capacity(lid));
  }
  s.line_rate = line;
  s.rate = line;  // RDMA starts at line rate
  s.delta = flow.spec.cc_rai.is_positive() ? flow.spec.cc_rai : config_.delta;
  const std::uint32_t slot = net.slot_of(flow.id);
  if (state_.size() <= slot) state_.resize(net.slab_size());
  state_[slot] = s;
  slots_[flow.id] = slot;
  flow.rate = s.rate;
}

void TimelyPolicy::on_flow_finished(Network& /*net*/, const Flow& flow) {
  // The slot's state is left stale; a reused slot is overwritten on start.
  slots_.erase(flow.id);
}

void TimelyPolicy::on_link_capacity_changed(Network& net, LinkId /*link*/) {
  // Cached line rates go stale when capacity changes mid-run (brownout or
  // restoration); refresh every active flow — faults are rare events.
  for (const std::uint32_t slot : net.active_slots()) {
    Flow& flow = net.flow_at(slot);
    FlowState& s = state_[slot];
    Rate line = Rate::gbps(1e9);
    for (const LinkId lid : flow.spec.route.links) {
      line = std::min(line, net.effective_capacity(lid));
    }
    s.line_rate = line;
    s.rate = std::min(s.rate, line);
    flow.rate = s.rate;
  }
}

void TimelyPolicy::update_rates(Network& net, TimePoint /*now*/, Duration dt) {
  if (links_.size() < net.topology().link_count()) {
    links_.resize(net.topology().link_count());
  }

  // Queue integration per link (same fluid model as the DCQCN CP); only
  // links carrying flows or draining leftover backlog are touched.
  ++step_stamp_;
  bool queues_clear = true;
  scratch_wet_.clear();
  const auto integrate = [&](std::size_t l, Rate arrival)
      __attribute__((always_inline)) {
    const Rate cap =
        net.effective_capacity(LinkId{static_cast<std::int32_t>(l)});
    Bytes q = links_[l].queue + (arrival - cap) * dt;
    if (q < Bytes::zero()) q = Bytes::zero();
    links_[l].queue = q;
    if (!q.is_zero()) {
      queues_clear = false;
      scratch_wet_.push_back(static_cast<std::uint32_t>(l));
    }
  };
  for (const LinkId lid : net.links_in_use()) {
    const auto l = static_cast<std::size_t>(lid.value);
    links_[l].stamp = step_stamp_;
    Rate arrival = Rate::zero();
    for (const std::uint32_t slot : net.flow_slots_on_link(lid)) {
      arrival += net.flow_at(slot).rate;
    }
    integrate(l, arrival);
  }
  for (const std::uint32_t l : wet_links_) {
    if (links_[l].stamp != step_stamp_) integrate(l, Rate::zero());
  }
  wet_links_.swap(scratch_wet_);
  queues_clear_ = queues_clear;

  for (const std::uint32_t slot : net.active_slots()) {
    Flow& flow = net.flow_at(slot);
    FlowState& s = state_[slot];

    s.since_update += dt;
    if (s.since_update < config_.update_interval) {
      flow.rate = s.rate;
      continue;
    }
    s.since_update = Duration::zero();

    // RTT = base + sum of queueing delays along the route.
    Duration rtt = config_.base_rtt;
    for (const LinkId lid : flow.spec.route.links) {
      const Rate cap = net.effective_capacity(lid);
      if (cap.is_positive()) {
        rtt += transfer_time(links_[lid.value].queue, cap);
      }
    }

    const double diff_us = rtt.to_micros() - s.prev_rtt.to_micros();
    s.prev_rtt = rtt;
    s.rtt_diff_ewma = (1.0 - config_.ewma_alpha) * s.rtt_diff_ewma +
                      config_.ewma_alpha * diff_us;
    const double gradient =
        s.rtt_diff_ewma / config_.base_rtt.to_micros();  // normalized
    s.last_gradient = gradient;

    if (rtt < config_.t_low) {
      s.rate += s.delta;
      ++s.completed_good_rounds;
    } else if (rtt > config_.t_high) {
      const double shrink =
          1.0 - config_.beta * (1.0 - config_.t_high / rtt);
      s.rate = s.rate * shrink;
      s.completed_good_rounds = 0;
    } else if (gradient <= 0.0) {
      ++s.completed_good_rounds;
      const int n =
          s.completed_good_rounds >= config_.hai_threshold ? 5 : 1;
      s.rate += s.delta * static_cast<double>(n);
    } else {
      s.rate = s.rate * (1.0 - config_.beta * std::min(gradient, 1.0));
      s.completed_good_rounds = 0;
    }
    s.rate = std::clamp(s.rate, config_.min_rate, s.line_rate);
    flow.rate = s.rate;
  }
}

Bytes TimelyPolicy::link_queue(LinkId link) const {
  if (!link.valid() || static_cast<std::size_t>(link.value) >= links_.size()) {
    return Bytes::zero();
  }
  return links_[link.value].queue;
}

TimelyPolicy::FlowDiag TimelyPolicy::diag(FlowId id) const {
  const auto it = slots_.find(id);
  assert(it != slots_.end());
  const FlowState& s = state_[it->second];
  return {s.rate, s.prev_rtt, s.last_gradient};
}

}  // namespace ccml
