#include "cc/timely.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "ckpt/snapshot.h"
#include "net/network.h"
#include "obs/trace_bus.h"

namespace ccml {

namespace {

// Out of line so the per-flow rate loop stays tight when tracing is off
// (same split as DCQCN's emit_rate_event).  TIMELY has no alpha, so value2
// carries the normalized RTT gradient that drove the decrease.
[[gnu::noinline]] void emit_decrease_event(TraceBus& bus, Counter& counter,
                                           TimePoint now, const Flow& flow,
                                           double rate_bps, double gradient) {
  TraceEvent ev;
  ev.time = now;
  ev.kind = TraceEventKind::kRateDecrease;
  ev.job = flow.spec.job;
  ev.flow = flow.id;
  ev.value = rate_bps;
  ev.value2 = gradient;
  bus.emit(ev);
  counter.add();
}

}  // namespace

TimelyPolicy::TimelyPolicy(TimelyConfig config) : config_(config) {
  assert(config_.t_high > config_.t_low);
  assert(config_.beta > 0.0 && config_.beta <= 1.0);
  assert(config_.update_interval.is_positive());
}

void TimelyPolicy::resize_soa(std::size_t n) {
  rate_bps_.resize(n);
  line_bps_.resize(n);
  delta_bps_.resize(n);
  ewma_col_.resize(n);
  grad_col_.resize(n);
  prev_rtt_ns_.resize(n);
  since_ns_.resize(n);
  good_rounds_.resize(n);
}

void TimelyPolicy::on_flow_started(Network& net, Flow& flow) {
  if (links_.size() < net.topology().link_count()) {
    links_.resize(net.topology().link_count());
  }
  Rate line = Rate::gbps(1e9);
  for (const LinkId lid : flow.spec.route.links) {
    line = std::min(line, net.effective_capacity(lid));
  }
  const Rate delta =
      flow.spec.cc_rai.is_positive() ? flow.spec.cc_rai : config_.delta;
  const std::uint32_t slot = net.slot_of(flow.id);
  if (config_.reference_kernel) {
    FlowState s;
    s.line_rate = line;
    s.rate = line;  // RDMA starts at line rate
    s.delta = delta;
    if (state_.size() <= slot) state_.resize(net.slab_size());
    state_[slot] = s;
  } else {
    if (rate_bps_.size() <= slot) resize_soa(net.slab_size());
    line_bps_[slot] = line.bits_per_sec();
    rate_bps_[slot] = line.bits_per_sec();
    delta_bps_[slot] = delta.bits_per_sec();
    ewma_col_[slot] = 0.0;
    grad_col_[slot] = 0.0;
    prev_rtt_ns_[slot] = 0;
    since_ns_[slot] = 0;
    good_rounds_[slot] = 0;
  }
  slots_[flow.id] = slot;
  net.set_rate(slot, line);
}

void TimelyPolicy::on_flow_finished(Network& /*net*/, const Flow& flow) {
  // The slot's state is left stale; a reused slot is overwritten on start.
  slots_.erase(flow.id);
}

void TimelyPolicy::on_link_capacity_changed(Network& net, LinkId /*link*/) {
  // Cached line rates go stale when capacity changes mid-run (brownout or
  // restoration); refresh every active flow — faults are rare events.
  for (const std::uint32_t slot : net.active_slots()) {
    const Flow& flow = net.flow_at(slot);
    Rate line = Rate::gbps(1e9);
    for (const LinkId lid : flow.spec.route.links) {
      line = std::min(line, net.effective_capacity(lid));
    }
    if (config_.reference_kernel) {
      FlowState& s = state_[slot];
      s.line_rate = line;
      s.rate = std::min(s.rate, line);
      net.set_rate(slot, s.rate);
    } else {
      line_bps_[slot] = line.bits_per_sec();
      rate_bps_[slot] = std::min(rate_bps_[slot], line.bits_per_sec());
      net.set_rate(slot, Rate::bps(rate_bps_[slot]));
    }
  }
}

void TimelyPolicy::update_rates(Network& net, TimePoint now, Duration dt) {
  if (links_.size() < net.topology().link_count()) {
    links_.resize(net.topology().link_count());
  }
  TraceBus* bus = net.trace_bus();
  if (bus != bus_cache_) {
    bus_cache_ = bus;
    c_decrease_ = bus ? &bus->counter("timely.decreases") : nullptr;
  }

  // Queue integration per link (same fluid model as the DCQCN CP); only
  // links carrying flows or draining leftover backlog are touched.
  ++step_stamp_;
  bool queues_clear = true;
  scratch_wet_.clear();
  const std::span<const double> rates = net.rates_bps();
  const auto integrate = [&](std::size_t l, Rate arrival)
      __attribute__((always_inline)) {
    const Rate cap =
        net.effective_capacity(LinkId{static_cast<std::int32_t>(l)});
    Bytes q = links_[l].queue + (arrival - cap) * dt;
    if (q < Bytes::zero()) q = Bytes::zero();
    links_[l].queue = q;
    if (!q.is_zero()) {
      queues_clear = false;
      scratch_wet_.push_back(static_cast<std::uint32_t>(l));
    }
  };
  for (const LinkId lid : net.links_in_use()) {
    const auto l = static_cast<std::size_t>(lid.value);
    links_[l].stamp = step_stamp_;
    double arrival_bps = 0.0;
    for (const std::uint32_t slot : net.flow_slots_on_link(lid)) {
      arrival_bps += rates[slot];
    }
    integrate(l, Rate::bps(arrival_bps));
  }
  for (const std::uint32_t l : wet_links_) {
    if (links_[l].stamp != step_stamp_) integrate(l, Rate::zero());
  }
  wet_links_.swap(scratch_wet_);
  queues_clear_ = queues_clear;

  if (config_.reference_kernel) {
    update_rates_reference(net, now, dt);
  } else {
    update_rates_soa(net, now, dt);
  }
}

void TimelyPolicy::update_rates_reference(Network& net, TimePoint now,
                                          Duration dt) {
  for (const std::uint32_t slot : net.active_slots()) {
    const Flow& flow = net.flow_at(slot);
    FlowState& s = state_[slot];

    s.since_update += dt;
    if (s.since_update < config_.update_interval) {
      net.set_rate(slot, s.rate);
      continue;
    }
    s.since_update = Duration::zero();

    // RTT = base + sum of queueing delays along the route.
    Duration rtt = config_.base_rtt;
    for (const LinkId lid : flow.spec.route.links) {
      const Rate cap = net.effective_capacity(lid);
      if (cap.is_positive()) {
        rtt += transfer_time(links_[lid.value].queue, cap);
      }
    }

    const double diff_us = rtt.to_micros() - s.prev_rtt.to_micros();
    s.prev_rtt = rtt;
    s.rtt_diff_ewma = (1.0 - config_.ewma_alpha) * s.rtt_diff_ewma +
                      config_.ewma_alpha * diff_us;
    const double gradient =
        s.rtt_diff_ewma / config_.base_rtt.to_micros();  // normalized
    s.last_gradient = gradient;

    bool decreased = false;
    if (rtt < config_.t_low) {
      s.rate += s.delta;
      ++s.completed_good_rounds;
    } else if (rtt > config_.t_high) {
      const double shrink =
          1.0 - config_.beta * (1.0 - config_.t_high / rtt);
      s.rate = s.rate * shrink;
      s.completed_good_rounds = 0;
      decreased = true;
    } else if (gradient <= 0.0) {
      ++s.completed_good_rounds;
      const int n =
          s.completed_good_rounds >= config_.hai_threshold ? 5 : 1;
      s.rate += s.delta * static_cast<double>(n);
    } else {
      s.rate = s.rate * (1.0 - config_.beta * std::min(gradient, 1.0));
      s.completed_good_rounds = 0;
      decreased = true;
    }
    s.rate = std::clamp(s.rate, config_.min_rate, s.line_rate);
    net.set_rate(slot, s.rate);
    if (decreased && bus_cache_ != nullptr) [[unlikely]] {
      emit_decrease_event(*bus_cache_, *c_decrease_, now, flow,
                          s.rate.bits_per_sec(), gradient);
    }
  }
}

// SoA twin of update_rates_reference: identical arithmetic in identical
// order over the slab columns (the RTT sum keeps the Duration int64-ns
// wrappers so rounding matches to the bit), with the route walk taken from
// the network's flat link array and rates scattered straight into the
// network slab.
void TimelyPolicy::update_rates_soa(Network& net, TimePoint now, Duration dt) {
  const std::span<const std::uint32_t> slots = net.active_slots();
  const std::span<double> rates = net.mutable_rates_bps();
  const std::int64_t dt_ns = dt.ns();
  const std::int64_t interval_ns = config_.update_interval.ns();
  const double ewma_a = config_.ewma_alpha;
  const double base_us = config_.base_rtt.to_micros();
  const double min_bps = config_.min_rate.bits_per_sec();
  for (const std::uint32_t slot : slots) {
    since_ns_[slot] += dt_ns;
    if (since_ns_[slot] < interval_ns) {
      rates[slot] = rate_bps_[slot];
      continue;
    }
    since_ns_[slot] = 0;

    Duration rtt = config_.base_rtt;
    for (const std::int32_t l : net.route_links(slot)) {
      const Rate cap = net.effective_capacity(LinkId{l});
      if (cap.is_positive()) {
        rtt += transfer_time(links_[l].queue, cap);
      }
    }

    const Duration prev = Duration::nanos(prev_rtt_ns_[slot]);
    const double diff_us = rtt.to_micros() - prev.to_micros();
    prev_rtt_ns_[slot] = rtt.ns();
    ewma_col_[slot] = (1.0 - ewma_a) * ewma_col_[slot] + ewma_a * diff_us;
    const double gradient = ewma_col_[slot] / base_us;
    grad_col_[slot] = gradient;

    double rate = rate_bps_[slot];
    bool decreased = false;
    if (rtt < config_.t_low) {
      rate += delta_bps_[slot];
      ++good_rounds_[slot];
    } else if (rtt > config_.t_high) {
      const double shrink =
          1.0 - config_.beta * (1.0 - config_.t_high / rtt);
      rate = rate * shrink;
      good_rounds_[slot] = 0;
      decreased = true;
    } else if (gradient <= 0.0) {
      ++good_rounds_[slot];
      const int n = good_rounds_[slot] >= config_.hai_threshold ? 5 : 1;
      rate += delta_bps_[slot] * static_cast<double>(n);
    } else {
      rate = rate * (1.0 - config_.beta * std::min(gradient, 1.0));
      good_rounds_[slot] = 0;
      decreased = true;
    }
    rate = std::clamp(rate, min_bps, line_bps_[slot]);
    rate_bps_[slot] = rate;
    rates[slot] = rate;
    if (decreased && bus_cache_ != nullptr) [[unlikely]] {
      emit_decrease_event(*bus_cache_, *c_decrease_, now, net.flow_at(slot),
                          rate, gradient);
    }
  }
}

double TimelyPolicy::rate_bound_bps(const Network& /*net*/,
                                    std::uint32_t slot) const {
  const double line = config_.reference_kernel
                          ? state_[slot].line_rate.bits_per_sec()
                          : line_bps_[slot];
  // Every rate update clamps to [min_rate, line_rate]; min_rate can exceed
  // the line rate of a browned-out route, so the bound covers both.
  return std::max(line, config_.min_rate.bits_per_sec());
}

Bytes TimelyPolicy::link_queue(LinkId link) const {
  if (!link.valid() || static_cast<std::size_t>(link.value) >= links_.size()) {
    return Bytes::zero();
  }
  return links_[link.value].queue;
}

TimelyPolicy::FlowDiag TimelyPolicy::diag(FlowId id) const {
  const auto it = slots_.find(id);
  assert(it != slots_.end());
  const std::uint32_t slot = it->second;
  if (config_.reference_kernel) {
    const FlowState& s = state_[slot];
    return {s.rate, s.prev_rtt, s.last_gradient};
  }
  return {Rate::bps(rate_bps_[slot]), Duration::nanos(prev_rtt_ns_[slot]),
          grad_col_[slot]};
}

std::string TimelyPolicy::serialize_state() const {
  // Ascending flow id, same contract as DcqcnPolicy::serialize_state.
  std::vector<std::pair<std::int64_t, std::uint32_t>> flows;
  flows.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) flows.emplace_back(id.value, slot);
  std::sort(flows.begin(), flows.end());

  StateBuf out;
  out.put_u8(config_.reference_kernel ? 1 : 0);
  out.put_u64(flows.size());
  for (const auto& [id, slot] : flows) {
    out.put_i64(id);
    out.put_u32(slot);
    if (config_.reference_kernel) {
      const FlowState& s = state_[slot];
      out.put_f64(s.rate.bits_per_sec());
      out.put_f64(s.line_rate.bits_per_sec());
      out.put_f64(s.delta.bits_per_sec());
      out.put_i64(s.prev_rtt.ns());
      out.put_f64(s.rtt_diff_ewma);
      out.put_u32(static_cast<std::uint32_t>(s.completed_good_rounds));
      out.put_i64(s.since_update.ns());
      out.put_f64(s.last_gradient);
    } else {
      out.put_f64(rate_bps_[slot]);
      out.put_f64(line_bps_[slot]);
      out.put_f64(delta_bps_[slot]);
      out.put_i64(prev_rtt_ns_[slot]);
      out.put_f64(ewma_col_[slot]);
      out.put_u32(static_cast<std::uint32_t>(good_rounds_[slot]));
      out.put_i64(since_ns_[slot]);
      out.put_f64(grad_col_[slot]);
    }
  }
  out.put_u64(links_.size());
  for (const LinkState& l : links_) out.put_f64(l.queue.count());
  out.put_u8(queues_clear_ ? 1 : 0);
  return out.take();
}

}  // namespace ccml
