// Weighted fair queueing at fluid granularity: weighted max-min allocation
// using each flow's FlowSpec::weight.  Models switches dividing bandwidth in
// configured proportions (paper §4, priority-queue direction, when queues are
// weighted rather than strict).
#pragma once

#include "net/policy.h"

namespace ccml {

class WfqPolicy final : public BandwidthPolicy {
 public:
  const char* name() const override { return "wfq"; }
  void update_rates(Network& net, TimePoint now, Duration dt) override;
  // Allocation is recomputed from scratch each step; nothing decays.
  bool quiescent() const override { return true; }
};

}  // namespace ccml
