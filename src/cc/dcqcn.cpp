#include "cc/dcqcn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "net/network.h"
#include "obs/trace_bus.h"

namespace ccml {

namespace {

// Kept out of line so the per-flow rate loop stays tight when tracing is
// off — inlining the event construction into update_rates costs measurable
// time even when the branch never fires.
[[gnu::noinline]] void emit_rate_event(TraceBus& bus, Counter& counter,
                                       TraceEventKind kind, TimePoint now,
                                       const Flow& flow, double rate_bps,
                                       double value2) {
  TraceEvent ev;
  ev.time = now;
  ev.kind = kind;
  ev.job = flow.spec.job;
  ev.flow = flow.id;
  ev.value = rate_bps;
  ev.value2 = value2;
  bus.emit(ev);
  counter.add();
}

}  // namespace

DcqcnPolicy::DcqcnPolicy(DcqcnConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.kmax > config_.kmin);
  assert(config_.pmax > 0.0 && config_.pmax <= 1.0);
  assert(config_.timer.is_positive());
  assert(config_.byte_counter.is_positive());
  kmin_bytes_ = config_.kmin.count();
  kmax_bytes_ = config_.kmax.count();
  mark_scale_ = config_.pmax / (kmax_bytes_ - kmin_bytes_);
}

void DcqcnPolicy::on_flow_started(Network& net, Flow& flow) {
  if (links_.size() < net.topology().link_count()) {
    links_.resize(net.topology().link_count());
  }
  FlowState s;
  Rate line = Rate::gbps(1e9);  // effectively infinite until min'ed below
  for (const LinkId lid : flow.spec.route.links) {
    line = std::min(line, net.effective_capacity(lid));
  }
  s.line_rate = line;
  // RDMA senders start at line rate and back off on marks.
  s.rc = line;
  s.rt = line;
  s.timer = flow.spec.cc_timer.is_positive() ? flow.spec.cc_timer
                                             : config_.timer;
  s.rai = flow.spec.cc_rai.is_positive() ? flow.spec.cc_rai : config_.rai;
  const std::uint32_t slot = net.slot_of(flow.id);
  if (state_.size() <= slot) state_.resize(net.slab_size());
  state_[slot] = s;
  slots_[flow.id] = slot;
  flow.rate = s.rc;
}

void DcqcnPolicy::on_flow_finished(Network& /*net*/, const Flow& flow) {
  // The slot's state is left stale; a reused slot is overwritten on start.
  slots_.erase(flow.id);
}

void DcqcnPolicy::on_link_capacity_changed(Network& net, LinkId /*link*/) {
  // Line rates are cached per flow at start; a capacity change (brownout or
  // restoration) anywhere on a route invalidates them.  Faults are rare, so
  // refreshing every active flow is fine.
  for (const std::uint32_t slot : net.active_slots()) {
    Flow& flow = net.flow_at(slot);
    FlowState& s = state_[slot];
    Rate line = Rate::gbps(1e9);
    for (const LinkId lid : flow.spec.route.links) {
      line = std::min(line, net.effective_capacity(lid));
    }
    s.line_rate = line;
    s.rc = std::min(s.rc, line);
    s.rt = std::min(s.rt, line);
    flow.rate = s.rc;
  }
}

void DcqcnPolicy::apply_decrease(FlowState& s) {
  s.rt = s.rc;
  s.alpha = (1.0 - config_.g) * s.alpha + config_.g;
  s.rc = s.rc * (1.0 - s.alpha / 2.0);
  // DCQCN clamps at a small positive minimum so flows never starve entirely.
  s.rc = std::max(s.rc, Rate::mbps(10));
  s.time_since_increase = Duration::zero();
  s.bytes_since_increase = Bytes::zero();
  s.timer_rounds = 0;
  s.byte_rounds = 0;
  s.since_last_cnp = Duration::zero();
  s.alpha_clock = Duration::zero();
}

void DcqcnPolicy::apply_increase(FlowState& s, const Flow& flow) {
  const int f = config_.fast_recovery_rounds;
  if (s.timer_rounds >= f && s.byte_rounds >= f) {
    s.rt += config_.rhai;  // hyper increase
  } else if (s.timer_rounds >= f || s.byte_rounds >= f) {
    Rate rai = s.rai;
    if (config_.adaptive_rai) {
      // Paper §4: R_AI * (1 + Data_sent / Data_comm_phase).  Each flow
      // carries exactly one communication phase, so flow progress is the
      // paper's ratio.
      rai = rai * (1.0 + flow.progress());
    }
    s.rt += rai;  // additive increase
  }
  // All stages: current rate glides halfway to target ("fast recovery" when
  // the target is unchanged).
  s.rc = (s.rt + s.rc) * 0.5;
  s.rc = std::min(s.rc, s.line_rate);
  s.rt = std::min(s.rt, s.line_rate);
}

void DcqcnPolicy::update_rates(Network& net, TimePoint now, Duration dt) {
  if (links_.size() < net.topology().link_count()) {
    links_.resize(net.topology().link_count());
  }
  TraceBus* bus = net.trace_bus();
  if (bus != bus_cache_) {
    bus_cache_ = bus;
    c_cnp_ = bus ? &bus->counter("dcqcn.cnp") : nullptr;
    c_timer_fires_ = bus ? &bus->counter("dcqcn.timer_fires") : nullptr;
  }

  // --- CP: integrate egress queues and refresh marking probabilities. -----
  // Only links carrying flows or still draining backlog from departed flows
  // are touched; idle links stay at queue == 0, mark_prob == 0.
  ++step_stamp_;
  bool queues_clear = true;
  bool any_marked = false;
  scratch_wet_.clear();
  const auto integrate = [&](std::size_t l, Rate arrival)
      __attribute__((always_inline)) {
    const Rate cap =
        net.effective_capacity(LinkId{static_cast<std::int32_t>(l)});
    Bytes q = links_[l].queue + (arrival - cap) * dt;
    if (q < Bytes::zero()) q = Bytes::zero();
    links_[l].queue = q;
    const double p = red_probability(q.count());
    links_[l].mark_prob = p;
    // Hoists the per-flow libm work: P(packet unmarked on the route) is the
    // product of per-link (1-p), so each flow only needs the sum of these
    // logs and a single exp.  log1p(-1) = -inf gives p_any = 1 exactly.
    links_[l].log_keep = p > 0.0 ? std::log1p(-p) : 0.0;
    if (p > 0.0) any_marked = true;
    if (!q.is_zero()) {
      queues_clear = false;
      scratch_wet_.push_back(static_cast<std::uint32_t>(l));
    }
  };
  for (const LinkId lid : net.links_in_use()) {
    const auto l = static_cast<std::size_t>(lid.value);
    links_[l].stamp = step_stamp_;
    Rate arrival = Rate::zero();
    for (const std::uint32_t slot : net.flow_slots_on_link(lid)) {
      arrival += net.flow_at(slot).rate;
    }
    integrate(l, arrival);
  }
  // Backlog on links whose flows all departed drains at line rate.
  for (const std::uint32_t l : wet_links_) {
    if (links_[l].stamp != step_stamp_) integrate(l, Rate::zero());
  }
  wet_links_.swap(scratch_wet_);
  queues_clear_ = queues_clear;

  // --- NP + RP: per-flow CNP arrivals and rate machine updates. -----------
  if (bus != nullptr) {
    rp_pass<true>(net, now, dt, any_marked);
  } else {
    rp_pass<false>(net, now, dt, any_marked);
  }
}

template <bool Traced>
void DcqcnPolicy::rp_pass(Network& net, TimePoint now, Duration dt,
                          bool any_marked) {
  for (const std::uint32_t slot : net.active_slots()) {
    Flow& flow = net.flow_at(slot);
    FlowState& s = state_[slot];

    // Probability that at least one of this step's packets is marked on any
    // traversed link: 1 - prod_l (1-p_l)^pkts, computed in log space with
    // the per-link logs cached by the CP pass above.
    double sum_log = 0.0;
    if (any_marked) {
      for (const LinkId lid : flow.spec.route.links) {
        sum_log += links_[lid.value].log_keep;
      }
    }
    const Bytes sent = flow.rate * dt;
    double p_any = 0.0;
    if (sum_log < 0.0) {
      const double pkts = std::max(1.0, sent / config_.mtu);
      p_any = 1.0 - std::exp(pkts * sum_log);
    }

    if (s.since_last_cnp < Duration::max()) s.since_last_cnp += dt;
    s.alpha_clock += dt;

    bool cnp = false;
    const bool cnp_allowed = s.since_last_cnp >= config_.cnp_interval;
    if (config_.deterministic_marking) {
      if (p_any > 0.0) {
        s.expected_marks += p_any;
        s.clean_streak = Duration::zero();
      } else {
        s.clean_streak += dt;
        if (s.clean_streak >= config_.cnp_interval) s.expected_marks = 0.0;
      }
      if (cnp_allowed && s.expected_marks >= 1.0) {
        cnp = true;
        s.expected_marks = 0.0;
      }
    } else {
      cnp = cnp_allowed && p_any > 0.0 && rng_.chance(p_any);
    }
    if (cnp) {
      apply_decrease(s);
      if constexpr (Traced) {
        emit_rate_event(*bus_cache_, *c_cnp_, TraceEventKind::kRateDecrease,
                        now, flow, s.rc.bits_per_sec(), s.alpha);
      }
    } else {
      // Alpha decay while uncongested.
      while (s.alpha_clock >= config_.alpha_update) {
        s.alpha *= (1.0 - config_.g);
        s.alpha_clock -= config_.alpha_update;
      }
      // Timer- and byte-driven increase events.
      s.time_since_increase += dt;
      s.bytes_since_increase += sent;
      while (s.time_since_increase >= s.timer) {
        s.time_since_increase -= s.timer;
        ++s.timer_rounds;
        apply_increase(s, flow);
        if constexpr (Traced) {
          emit_rate_event(*bus_cache_, *c_timer_fires_,
                          TraceEventKind::kRateTimer, now, flow,
                          s.rc.bits_per_sec(), s.timer_rounds);
        }
      }
      while (s.bytes_since_increase >= config_.byte_counter) {
        s.bytes_since_increase -= config_.byte_counter;
        ++s.byte_rounds;
        apply_increase(s, flow);
      }
    }
    flow.rate = s.rc;
  }
}

Bytes DcqcnPolicy::link_queue(LinkId link) const {
  if (!link.valid() || static_cast<std::size_t>(link.value) >= links_.size()) {
    return Bytes::zero();
  }
  return links_[link.value].queue;
}

DcqcnPolicy::RpState DcqcnPolicy::rp_state(FlowId id) const {
  const auto it = slots_.find(id);
  assert(it != slots_.end());
  const FlowState& s = state_[it->second];
  return {s.rc, s.rt, s.alpha, s.timer_rounds, s.byte_rounds};
}

}  // namespace ccml
