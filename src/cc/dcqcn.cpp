#include "cc/dcqcn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "ckpt/snapshot.h"
#include "net/network.h"
#include "obs/trace_bus.h"

namespace ccml {

namespace {

// Kept out of line so the per-flow rate loop stays tight when tracing is
// off — inlining the event construction into update_rates costs measurable
// time even when the branch never fires.
[[gnu::noinline]] void emit_rate_event(TraceBus& bus, Counter& counter,
                                       TraceEventKind kind, TimePoint now,
                                       const Flow& flow, double rate_bps,
                                       double value2) {
  TraceEvent ev;
  ev.time = now;
  ev.kind = kind;
  ev.job = flow.spec.job;
  ev.flow = flow.id;
  ev.value = rate_bps;
  ev.value2 = value2;
  bus.emit(ev);
  counter.add();
}

}  // namespace

DcqcnPolicy::DcqcnPolicy(DcqcnConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.kmax > config_.kmin);
  assert(config_.pmax > 0.0 && config_.pmax <= 1.0);
  assert(config_.timer.is_positive());
  assert(config_.byte_counter.is_positive());
  kmin_bytes_ = config_.kmin.count();
  kmax_bytes_ = config_.kmax.count();
  mark_scale_ = config_.pmax / (kmax_bytes_ - kmin_bytes_);
}

void DcqcnPolicy::resize_soa(std::size_t n) {
  rc_bps_.resize(n);
  rt_bps_.resize(n);
  line_bps_.resize(n);
  alpha_col_.resize(n);
  rai_bps_.resize(n);
  bsi_bytes_.resize(n);
  emarks_.resize(n);
  timer_ns_.resize(n);
  tsi_ns_.resize(n);
  cnp_ns_.resize(n);
  aclk_ns_.resize(n);
  clean_ns_.resize(n);
  timer_rounds_col_.resize(n);
  byte_rounds_col_.resize(n);
}

void DcqcnPolicy::refresh_caps(const Network& net) {
  const std::size_t n = net.topology().link_count();
  links_.ensure_links(n);
  for (std::size_t l = 0; l < n; ++l) {
    links_[l].cap_bps =
        net.effective_capacity(LinkId{static_cast<std::int32_t>(l)})
            .bits_per_sec();
  }
}

void DcqcnPolicy::rebuild_cp_links(const Network& net) {
  // Exact recompute (no incremental float drift): per link, the sum of the
  // line rates of the active flows crossing it.  Flow-set and capacity
  // changes are rare, so O(flows x route length) here buys a CP pass that
  // touches only links that can actually congest.
  scratch_bound_.assign(links_.size(), 0.0);
  for (const std::uint32_t slot : net.active_slots()) {
    const double line = config_.reference_kernel
                            ? state_[slot].line_rate.bits_per_sec()
                            : line_bps_[slot];
    for (const std::int32_t l : net.route_links(slot)) {
      scratch_bound_[l] += line;
    }
  }
  cp_links_.clear();
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (scratch_bound_[l] > links_[l].cap_bps) {
      cp_links_.push_back(static_cast<std::int32_t>(l));
    }
  }
}

void DcqcnPolicy::on_flow_started(Network& net, Flow& flow) {
  if (links_.size() < net.topology().link_count()) {
    refresh_caps(net);
  }
  const Rate line = route_line_rate(net, flow);
  const Duration timer = flow.spec.cc_timer.is_positive() ? flow.spec.cc_timer
                                                          : config_.timer;
  const Rate rai =
      flow.spec.cc_rai.is_positive() ? flow.spec.cc_rai : config_.rai;
  const std::uint32_t slot = net.slot_of(flow.id);
  if (config_.reference_kernel) {
    FlowState s;
    s.line_rate = line;
    // RDMA senders start at line rate and back off on marks.
    s.rc = line;
    s.rt = line;
    s.timer = timer;
    s.rai = rai;
    if (state_.size() <= slot) state_.resize(net.slab_size());
    state_[slot] = s;
  } else {
    if (rc_bps_.size() <= slot) resize_soa(net.slab_size());
    const double line_bps = line.bits_per_sec();
    line_bps_[slot] = line_bps;
    rc_bps_[slot] = line_bps;
    rt_bps_[slot] = line_bps;
    alpha_col_[slot] = 1.0;
    timer_ns_[slot] = timer.ns();
    rai_bps_[slot] = rai.bits_per_sec();
    tsi_ns_[slot] = 0;
    bsi_bytes_[slot] = 0.0;
    timer_rounds_col_[slot] = 0;
    byte_rounds_col_[slot] = 0;
    cnp_ns_[slot] = Duration::max().ns();
    aclk_ns_[slot] = 0;
    emarks_[slot] = 0.0;
    clean_ns_[slot] = 0;
  }
  slots_[flow.id] = slot;
  net.set_rate(slot, line);
  rebuild_cp_links(net);
}

void DcqcnPolicy::on_flow_finished(Network& net, const Flow& flow) {
  // The slot's state is left stale; a reused slot is overwritten on start.
  slots_.erase(flow.id);
  rebuild_cp_links(net);
}

void DcqcnPolicy::on_link_capacity_changed(Network& net, LinkId /*link*/) {
  // Line rates are cached per flow at start and per link for the CP pass; a
  // capacity change (brownout or restoration) anywhere invalidates both.
  // Faults are rare, so refreshing everything is fine.
  refresh_caps(net);
  for (const std::uint32_t slot : net.active_slots()) {
    const Flow& flow = net.flow_at(slot);
    const Rate line = route_line_rate(net, flow);
    if (config_.reference_kernel) {
      FlowState& s = state_[slot];
      s.line_rate = line;
      s.rc = std::min(s.rc, line);
      s.rt = std::min(s.rt, line);
      net.set_rate(slot, s.rc);
    } else {
      const double line_bps = line.bits_per_sec();
      line_bps_[slot] = line_bps;
      rc_bps_[slot] = std::min(rc_bps_[slot], line_bps);
      rt_bps_[slot] = std::min(rt_bps_[slot], line_bps);
      net.set_rate(slot, Rate::bps(rc_bps_[slot]));
    }
  }
  rebuild_cp_links(net);
}

void DcqcnPolicy::apply_decrease(FlowState& s) {
  s.rt = s.rc;
  s.alpha = (1.0 - config_.g) * s.alpha + config_.g;
  s.rc = s.rc * (1.0 - s.alpha / 2.0);
  // DCQCN clamps at a small positive minimum so flows never starve entirely.
  s.rc = std::max(s.rc, Rate::mbps(10));
  s.time_since_increase = Duration::zero();
  s.bytes_since_increase = Bytes::zero();
  s.timer_rounds = 0;
  s.byte_rounds = 0;
  s.since_last_cnp = Duration::zero();
  s.alpha_clock = Duration::zero();
}

void DcqcnPolicy::apply_increase(FlowState& s, double progress) {
  const int f = config_.fast_recovery_rounds;
  if (s.timer_rounds >= f && s.byte_rounds >= f) {
    s.rt += config_.rhai;  // hyper increase
  } else if (s.timer_rounds >= f || s.byte_rounds >= f) {
    Rate rai = s.rai;
    if (config_.adaptive_rai) {
      // Paper §4: R_AI * (1 + Data_sent / Data_comm_phase).  Each flow
      // carries exactly one communication phase, so flow progress is the
      // paper's ratio.
      rai = rai * (1.0 + progress);
    }
    s.rt += rai;  // additive increase
  }
  // All stages: current rate glides halfway to target ("fast recovery" when
  // the target is unchanged).
  s.rc = (s.rt + s.rc) * 0.5;
  s.rc = std::min(s.rc, s.line_rate);
  s.rt = std::min(s.rt, s.line_rate);
}

// The SoA twin of apply_increase; same operations in the same order on the
// slab columns, so the two kernels stay bit-identical.
void DcqcnPolicy::soa_increase(std::uint32_t slot, double progress) {
  const int f = config_.fast_recovery_rounds;
  if (timer_rounds_col_[slot] >= f && byte_rounds_col_[slot] >= f) {
    rt_bps_[slot] += config_.rhai.bits_per_sec();
  } else if (timer_rounds_col_[slot] >= f || byte_rounds_col_[slot] >= f) {
    double rai = rai_bps_[slot];
    if (config_.adaptive_rai) rai = rai * (1.0 + progress);
    rt_bps_[slot] += rai;
  }
  rc_bps_[slot] = (rt_bps_[slot] + rc_bps_[slot]) * 0.5;
  rc_bps_[slot] = std::min(rc_bps_[slot], line_bps_[slot]);
  rt_bps_[slot] = std::min(rt_bps_[slot], line_bps_[slot]);
}

// Once-per-call setup shared by update_rates and update_rates_burst: sizes
// the link table to the topology and re-resolves counter handles when the
// bound trace bus changed.  Neither can change inside a fused burst.
void DcqcnPolicy::sync_caches(Network& net) {
  if (links_.size() < net.topology().link_count()) {
    refresh_caps(net);
  }
  TraceBus* bus = net.trace_bus();
  if (bus != bus_cache_) {
    bus_cache_ = bus;
    c_cnp_ = bus ? &bus->counter("dcqcn.cnp") : nullptr;
    c_timer_fires_ = bus ? &bus->counter("dcqcn.timer_fires") : nullptr;
  }
}

void DcqcnPolicy::update_rates(Network& net, TimePoint now, Duration dt) {
  sync_caches(net);
  step_tick(net, now, dt);
}

void DcqcnPolicy::update_rates_burst(Network& net, TimePoint first, Duration dt,
                                     std::uint64_t ticks) {
  sync_caches(net);
  const double dt_s = dt.to_seconds();
  TimePoint now = first;
  for (std::uint64_t k = 0; k < ticks; ++k) {
    step_tick(net, now, dt);
    net.integrate_progress_unchecked(dt_s);
    now = now + dt;
  }
}

double DcqcnPolicy::rate_bound_bps(const Network& /*net*/,
                                   std::uint32_t slot) const {
  const double line = config_.reference_kernel
                          ? state_[slot].line_rate.bits_per_sec()
                          : line_bps_[slot];
  // apply_decrease floors R_C at 10 Mbps, which can exceed the line rate of
  // a browned-out route, so the bound must cover both.
  return std::max(line, Rate::mbps(10).bits_per_sec());
}

void DcqcnPolicy::step_tick(Network& net, TimePoint now, Duration dt) {
  // --- CP: integrate egress queues and refresh marking probabilities. -----
  // Only links carrying flows or still draining backlog from departed flows
  // are touched (the shared slab's hot + wet two-pass loop); idle links stay
  // at queue == 0, mark_prob == 0.  All the arithmetic runs on raw doubles
  // (queue bytes, cached capacity bps) — the unit wrappers cost measurable
  // time at one call per link per tick.
  bool any_marked = false;
  const double dt_s = dt.to_seconds();
  const auto integrate = [&](std::size_t l, double arrival_bps)
      __attribute__((always_inline)) {
    LinkState& ls = links_[l];
    // Dry fast path: an empty queue that is not filling stays empty, and
    // its marking state is already zero from the pass that drained it.
    // Most links on most ticks are dry (e.g. host links faster than the
    // route's bottleneck), so this skips the RED math and four stores.
    if (ls.queue_b == 0.0 && arrival_bps <= ls.cap_bps) return false;
    double q = ls.queue_b + (arrival_bps - ls.cap_bps) * dt_s / 8.0;
    if (q < 0.0) q = 0.0;
    ls.queue_b = q;
    const double p = red_probability(q);
    ls.mark_prob = p;
    // Hoists the per-flow libm work: P(packet unmarked on the route) is the
    // product of per-link (1-p), so each flow only needs the sum of these
    // logs and a single exp.  log1p(-1) = -inf gives p_any = 1 exactly.
    ls.log_keep = p > 0.0 ? std::log1p(-p) : 0.0;
    if (p > 0.0) any_marked = true;
    return q != 0.0;
  };
  // Only links that can congest under the current flow set (see cp_links_)
  // plus links still draining backlog need any CP work at all.
  links_.step(net, cp_links_, integrate);

  // --- NP + RP: per-flow CNP arrivals and rate machine updates. -----------
  if (config_.reference_kernel) {
    if (bus_cache_ != nullptr) {
      rp_pass<true>(net, now, dt, any_marked);
    } else {
      rp_pass<false>(net, now, dt, any_marked);
    }
  } else {
    if (bus_cache_ != nullptr) {
      rp_pass_soa<true>(net, now, dt, any_marked);
    } else {
      rp_pass_soa<false>(net, now, dt, any_marked);
    }
  }
}

template <bool Traced>
void DcqcnPolicy::rp_pass(Network& net, TimePoint now, Duration dt,
                          bool any_marked) {
  for (const std::uint32_t slot : net.active_slots()) {
    const Flow& flow = net.flow_at(slot);
    FlowState& s = state_[slot];

    // Probability that at least one of this step's packets is marked on any
    // traversed link: 1 - prod_l (1-p_l)^pkts, computed in log space with
    // the per-link logs cached by the CP pass above.
    double sum_log = 0.0;
    if (any_marked) {
      for (const LinkId lid : flow.spec.route.links) {
        sum_log += links_[lid.value].log_keep;
      }
    }
    const Bytes sent = net.rate_at(slot) * dt;
    double p_any = 0.0;
    if (sum_log < 0.0) {
      const double pkts = std::max(1.0, sent / config_.mtu);
      p_any = 1.0 - std::exp(pkts * sum_log);
    }

    if (s.since_last_cnp < Duration::max()) s.since_last_cnp += dt;
    s.alpha_clock += dt;

    bool cnp = false;
    const bool cnp_allowed = s.since_last_cnp >= config_.cnp_interval;
    if (config_.deterministic_marking) {
      if (p_any > 0.0) {
        s.expected_marks += p_any;
        s.clean_streak = Duration::zero();
      } else {
        s.clean_streak += dt;
        if (s.clean_streak >= config_.cnp_interval) s.expected_marks = 0.0;
      }
      if (cnp_allowed && s.expected_marks >= 1.0) {
        cnp = true;
        s.expected_marks = 0.0;
      }
    } else {
      cnp = cnp_allowed && p_any > 0.0 && rng_.chance(p_any);
    }
    if (cnp) {
      apply_decrease(s);
      if constexpr (Traced) {
        emit_rate_event(*bus_cache_, *c_cnp_, TraceEventKind::kRateDecrease,
                        now, flow, s.rc.bits_per_sec(), s.alpha);
      }
    } else {
      // Alpha decay while uncongested.
      while (s.alpha_clock >= config_.alpha_update) {
        s.alpha *= (1.0 - config_.g);
        s.alpha_clock -= config_.alpha_update;
      }
      // Timer- and byte-driven increase events.
      s.time_since_increase += dt;
      s.bytes_since_increase += sent;
      while (s.time_since_increase >= s.timer) {
        s.time_since_increase -= s.timer;
        ++s.timer_rounds;
        apply_increase(s, net.progress_at(slot));
        if constexpr (Traced) {
          emit_rate_event(*bus_cache_, *c_timer_fires_,
                          TraceEventKind::kRateTimer, now, flow,
                          s.rc.bits_per_sec(), s.timer_rounds);
        }
      }
      while (s.bytes_since_increase >= config_.byte_counter) {
        s.bytes_since_increase -= config_.byte_counter;
        ++s.byte_rounds;
        apply_increase(s, net.progress_at(slot));
      }
    }
    net.set_rate(slot, s.rc);
  }
}

template <bool Traced>
void DcqcnPolicy::rp_pass_soa(Network& net, TimePoint now, Duration dt,
                              bool any_marked) {
  const std::span<const std::uint32_t> slots = net.active_slots();
  const std::size_t n = slots.size();
  const std::span<double> rates = net.mutable_rates_bps();

  // Gather: per-flow bytes sent this step and route-wide marking
  // probability.  Both loops stream over dense scratch; the route walk uses
  // the network's flat link array (no per-flow Route indirection), and the
  // libm exp stays confined to flows that actually saw a marked link.
  if (scratch_sent_.size() < n) {
    scratch_sent_.resize(n);
    scratch_p_.resize(n);
  }
  const double dt_s = dt.to_seconds();
  if (any_marked) {
    const double mtu_b = config_.mtu.count();
    // Flows sharing a bottleneck at equal rates (the common symmetric case)
    // feed exp the same argument; memoizing the last call halves the libm
    // cost there and is exact — same input, same output.
    double memo_x = std::numeric_limits<double>::quiet_NaN();
    double memo_p = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double sent = rates[slots[i]] * dt_s / 8.0;
      scratch_sent_[i] = sent;
      double sum_log = 0.0;
      for (const std::int32_t l : net.route_links(slots[i])) {
        sum_log += links_[l].log_keep;
      }
      double p_any = 0.0;
      if (sum_log < 0.0) {
        const double pkts = std::max(1.0, sent / mtu_b);
        const double x = pkts * sum_log;
        if (x != memo_x) {
          memo_x = x;
          memo_p = 1.0 - std::exp(x);
        }
        p_any = memo_p;
      }
      scratch_p_[i] = p_any;
    }
  } else {
    // scratch_p_ is not read on unmarked ticks (the kernel uses the
    // any_marked flag), so only the sent column is gathered.
    for (std::size_t i = 0; i < n; ++i) {
      scratch_sent_[i] = rates[slots[i]] * dt_s / 8.0;
    }
  }

  // Kernel + scatter: the RP rate machine over the SoA columns.  Constants
  // are hoisted out of the loop; every arithmetic step mirrors the reference
  // kernel exactly (same order, same values) so results stay bit-identical.
  const std::int64_t dt_ns = dt.ns();
  const std::int64_t cnp_max_ns = Duration::max().ns();
  const std::int64_t cnp_interval_ns = config_.cnp_interval.ns();
  const std::int64_t alpha_update_ns = config_.alpha_update.ns();
  const double byte_counter_b = config_.byte_counter.count();
  const double one_minus_g = 1.0 - config_.g;
  const double rc_floor_bps = Rate::mbps(10).bits_per_sec();
  const bool deterministic = config_.deterministic_marking;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = slots[i];
    const double sent = scratch_sent_[i];
    const double p_any = any_marked ? scratch_p_[i] : 0.0;

    if (cnp_ns_[slot] < cnp_max_ns) cnp_ns_[slot] += dt_ns;
    aclk_ns_[slot] += dt_ns;

    bool cnp = false;
    const bool cnp_allowed = cnp_ns_[slot] >= cnp_interval_ns;
    if (deterministic) {
      // Written select-friendly (no stores inside branches): same values and
      // FP order as the reference kernel's branchy form — a clean streak of
      // one CNP interval forgets accumulated marks, and firing resets them.
      const bool has_p = p_any > 0.0;
      const std::int64_t clean = has_p ? 0 : clean_ns_[slot] + dt_ns;
      double em = emarks_[slot];
      if (has_p) em += p_any;
      if (clean >= cnp_interval_ns) em = 0.0;
      clean_ns_[slot] = clean;
      cnp = cnp_allowed && em >= 1.0;
      if (cnp) em = 0.0;
      emarks_[slot] = em;
    } else {
      cnp = cnp_allowed && p_any > 0.0 && rng_.chance(p_any);
    }
    if (cnp) {
      rt_bps_[slot] = rc_bps_[slot];
      alpha_col_[slot] = one_minus_g * alpha_col_[slot] + config_.g;
      rc_bps_[slot] = rc_bps_[slot] * (1.0 - alpha_col_[slot] / 2.0);
      rc_bps_[slot] = std::max(rc_bps_[slot], rc_floor_bps);
      tsi_ns_[slot] = 0;
      bsi_bytes_[slot] = 0.0;
      timer_rounds_col_[slot] = 0;
      byte_rounds_col_[slot] = 0;
      cnp_ns_[slot] = 0;
      aclk_ns_[slot] = 0;
      if constexpr (Traced) {
        emit_rate_event(*bus_cache_, *c_cnp_, TraceEventKind::kRateDecrease,
                        now, net.flow_at(slot), rc_bps_[slot],
                        alpha_col_[slot]);
      }
    } else {
      while (aclk_ns_[slot] >= alpha_update_ns) {
        alpha_col_[slot] *= one_minus_g;
        aclk_ns_[slot] -= alpha_update_ns;
      }
      tsi_ns_[slot] += dt_ns;
      bsi_bytes_[slot] += sent;
      while (tsi_ns_[slot] >= timer_ns_[slot]) {
        tsi_ns_[slot] -= timer_ns_[slot];
        ++timer_rounds_col_[slot];
        soa_increase(slot, net.progress_at(slot));
        if constexpr (Traced) {
          emit_rate_event(*bus_cache_, *c_timer_fires_,
                          TraceEventKind::kRateTimer, now, net.flow_at(slot),
                          rc_bps_[slot], timer_rounds_col_[slot]);
        }
      }
      while (bsi_bytes_[slot] >= byte_counter_b) {
        bsi_bytes_[slot] -= byte_counter_b;
        ++byte_rounds_col_[slot];
        soa_increase(slot, net.progress_at(slot));
      }
    }
    rates[slot] = rc_bps_[slot];
  }
}

Bytes DcqcnPolicy::link_queue(LinkId link) const {
  if (!link.valid() || static_cast<std::size_t>(link.value) >= links_.size()) {
    return Bytes::zero();
  }
  return Bytes::of(links_[link.value].queue_b);
}

DcqcnPolicy::RpState DcqcnPolicy::rp_state(FlowId id) const {
  const auto it = slots_.find(id);
  assert(it != slots_.end());
  const std::uint32_t slot = it->second;
  if (config_.reference_kernel) {
    const FlowState& s = state_[slot];
    return {s.rc, s.rt, s.alpha, s.timer_rounds, s.byte_rounds};
  }
  return {Rate::bps(rc_bps_[slot]), Rate::bps(rt_bps_[slot]),
          alpha_col_[slot], timer_rounds_col_[slot], byte_rounds_col_[slot]};
}

std::string DcqcnPolicy::serialize_state() const {
  // Ascending flow id: `slots_` is a hash map, and the checkpoint contract
  // is that identical live state yields identical bytes.
  const auto flows = sorted_flow_slots(slots_);

  StateBuf out;
  out.put_u8(config_.reference_kernel ? 1 : 0);
  out.put_u64(flows.size());
  for (const auto& [id, slot] : flows) {
    out.put_i64(id);
    out.put_u32(slot);
    if (config_.reference_kernel) {
      const FlowState& s = state_[slot];
      out.put_f64(s.rc.bits_per_sec());
      out.put_f64(s.rt.bits_per_sec());
      out.put_f64(s.line_rate.bits_per_sec());
      out.put_f64(s.alpha);
      out.put_i64(s.timer.ns());
      out.put_f64(s.rai.bits_per_sec());
      out.put_i64(s.time_since_increase.ns());
      out.put_f64(s.bytes_since_increase.count());
      out.put_u32(static_cast<std::uint32_t>(s.timer_rounds));
      out.put_u32(static_cast<std::uint32_t>(s.byte_rounds));
      out.put_i64(s.since_last_cnp.ns());
      out.put_i64(s.alpha_clock.ns());
      out.put_f64(s.expected_marks);
      out.put_i64(s.clean_streak.ns());
    } else {
      out.put_f64(rc_bps_[slot]);
      out.put_f64(rt_bps_[slot]);
      out.put_f64(line_bps_[slot]);
      out.put_f64(alpha_col_[slot]);
      out.put_i64(timer_ns_[slot]);
      out.put_f64(rai_bps_[slot]);
      out.put_i64(tsi_ns_[slot]);
      out.put_f64(bsi_bytes_[slot]);
      out.put_u32(static_cast<std::uint32_t>(timer_rounds_col_[slot]));
      out.put_u32(static_cast<std::uint32_t>(byte_rounds_col_[slot]));
      out.put_i64(cnp_ns_[slot]);
      out.put_i64(aclk_ns_[slot]);
      out.put_f64(emarks_[slot]);
      out.put_i64(clean_ns_[slot]);
    }
  }
  out.put_u64(links_.size());
  for (const LinkState& l : links_.links()) {
    out.put_f64(l.queue_b);
    out.put_f64(l.cap_bps);
  }
  out.put_bytes(rng_.save_state());
  out.put_u8(links_.queues_clear() ? 1 : 0);
  return out.take();
}

}  // namespace ccml
