#include "cc/dcqcn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "net/network.h"

namespace ccml {

DcqcnPolicy::DcqcnPolicy(DcqcnConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.kmax > config_.kmin);
  assert(config_.pmax > 0.0 && config_.pmax <= 1.0);
  assert(config_.timer.is_positive());
  assert(config_.byte_counter.is_positive());
}

void DcqcnPolicy::on_flow_started(Network& net, Flow& flow) {
  if (links_.size() < net.topology().link_count()) {
    links_.resize(net.topology().link_count());
  }
  FlowState s;
  Rate line = Rate::gbps(1e9);  // effectively infinite until min'ed below
  for (const LinkId lid : flow.spec.route.links) {
    line = std::min(line, net.effective_capacity(lid));
  }
  s.line_rate = line;
  // RDMA senders start at line rate and back off on marks.
  s.rc = line;
  s.rt = line;
  s.timer = flow.spec.cc_timer.is_positive() ? flow.spec.cc_timer
                                             : config_.timer;
  s.rai = flow.spec.cc_rai.is_positive() ? flow.spec.cc_rai : config_.rai;
  flows_.emplace(flow.id, s);
  flow.rate = s.rc;
}

void DcqcnPolicy::on_flow_finished(Network& /*net*/, const Flow& flow) {
  flows_.erase(flow.id);
}

double DcqcnPolicy::red_probability(Bytes queue) const {
  if (queue <= config_.kmin) return 0.0;
  if (queue >= config_.kmax) return 1.0;
  const double t = (queue - config_.kmin) / (config_.kmax - config_.kmin);
  return t * config_.pmax;
}

void DcqcnPolicy::apply_decrease(FlowState& s) {
  s.rt = s.rc;
  s.alpha = (1.0 - config_.g) * s.alpha + config_.g;
  s.rc = s.rc * (1.0 - s.alpha / 2.0);
  // DCQCN clamps at a small positive minimum so flows never starve entirely.
  s.rc = std::max(s.rc, Rate::mbps(10));
  s.time_since_increase = Duration::zero();
  s.bytes_since_increase = Bytes::zero();
  s.timer_rounds = 0;
  s.byte_rounds = 0;
  s.since_last_cnp = Duration::zero();
  s.alpha_clock = Duration::zero();
}

void DcqcnPolicy::apply_increase(FlowState& s, const Flow& flow) {
  const int f = config_.fast_recovery_rounds;
  if (s.timer_rounds >= f && s.byte_rounds >= f) {
    s.rt += config_.rhai;  // hyper increase
  } else if (s.timer_rounds >= f || s.byte_rounds >= f) {
    Rate rai = s.rai;
    if (config_.adaptive_rai) {
      // Paper §4: R_AI * (1 + Data_sent / Data_comm_phase).  Each flow
      // carries exactly one communication phase, so flow progress is the
      // paper's ratio.
      rai = rai * (1.0 + flow.progress());
    }
    s.rt += rai;  // additive increase
  }
  // All stages: current rate glides halfway to target ("fast recovery" when
  // the target is unchanged).
  s.rc = (s.rt + s.rc) * 0.5;
  s.rc = std::min(s.rc, s.line_rate);
  s.rt = std::min(s.rt, s.line_rate);
}

void DcqcnPolicy::update_rates(Network& net, TimePoint /*now*/, Duration dt) {
  if (links_.size() < net.topology().link_count()) {
    links_.resize(net.topology().link_count());
  }

  // --- CP: integrate egress queues and refresh marking probabilities. -----
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const LinkId lid{static_cast<std::int32_t>(l)};
    const auto& on_link = net.flows_on_link(lid);
    if (on_link.empty() && links_[l].queue.is_zero()) {
      links_[l].mark_prob = 0.0;
      continue;
    }
    Rate arrival = Rate::zero();
    for (const FlowId fid : on_link) arrival += net.flow(fid).rate;
    const Rate cap = net.effective_capacity(lid);
    const Bytes delta = (arrival - cap) * dt;
    Bytes q = links_[l].queue + delta;
    if (q < Bytes::zero()) q = Bytes::zero();
    links_[l].queue = q;
    links_[l].mark_prob = red_probability(q);
  }

  // --- NP + RP: per-flow CNP arrivals and rate machine updates. -----------
  for (const FlowId fid : net.active_flows()) {
    Flow& flow = net.flow(fid);
    auto it = flows_.find(fid);
    assert(it != flows_.end());
    FlowState& s = it->second;

    // Probability that at least one of this step's packets is marked on any
    // traversed link.
    double p_clean = 1.0;
    for (const LinkId lid : flow.spec.route.links) {
      p_clean *= 1.0 - links_[lid.value].mark_prob;
    }
    const double p_mark = 1.0 - p_clean;
    const double pkts = std::max(1.0, (flow.rate * dt) / config_.mtu);
    // P(no packet marked in the step) = (1-p)^pkts.
    const double p_any = 1.0 - std::pow(1.0 - p_mark, pkts);

    if (s.since_last_cnp < Duration::max()) s.since_last_cnp += dt;
    s.alpha_clock += dt;

    bool cnp = false;
    const bool cnp_allowed = s.since_last_cnp >= config_.cnp_interval;
    if (config_.deterministic_marking) {
      if (p_any > 0.0) {
        s.expected_marks += p_any;
        s.clean_streak = Duration::zero();
      } else {
        s.clean_streak += dt;
        if (s.clean_streak >= config_.cnp_interval) s.expected_marks = 0.0;
      }
      if (cnp_allowed && s.expected_marks >= 1.0) {
        cnp = true;
        s.expected_marks = 0.0;
      }
    } else {
      cnp = cnp_allowed && p_any > 0.0 && rng_.chance(p_any);
    }
    if (cnp) {
      apply_decrease(s);
    } else {
      // Alpha decay while uncongested.
      while (s.alpha_clock >= config_.alpha_update) {
        s.alpha *= (1.0 - config_.g);
        s.alpha_clock -= config_.alpha_update;
      }
      // Timer- and byte-driven increase events.
      s.time_since_increase += dt;
      s.bytes_since_increase += flow.rate * dt;
      while (s.time_since_increase >= s.timer) {
        s.time_since_increase -= s.timer;
        ++s.timer_rounds;
        apply_increase(s, flow);
      }
      while (s.bytes_since_increase >= config_.byte_counter) {
        s.bytes_since_increase -= config_.byte_counter;
        ++s.byte_rounds;
        apply_increase(s, flow);
      }
    }
    flow.rate = s.rc;
  }
}

Bytes DcqcnPolicy::link_queue(LinkId link) const {
  if (!link.valid() || static_cast<std::size_t>(link.value) >= links_.size()) {
    return Bytes::zero();
  }
  return links_[link.value].queue;
}

DcqcnPolicy::RpState DcqcnPolicy::rp_state(FlowId id) const {
  const auto it = flows_.find(id);
  assert(it != flows_.end());
  const FlowState& s = it->second;
  return {s.rc, s.rt, s.alpha, s.timer_rounds, s.byte_rounds};
}

}  // namespace ccml
