#include "cc/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ckpt/snapshot.h"
#include "net/network.h"
#include "obs/trace_bus.h"

namespace ccml {

namespace {

[[noreturn]] void parse_fail(int line, const std::string& what) {
  throw std::invalid_argument("cc-table line " + std::to_string(line) + ": " +
                              what);
}

double parse_num(const std::string& tok, int line, const char* what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tok.size()) {
    parse_fail(line, std::string("bad ") + what + " '" + tok + "'");
  }
  return v;
}

// A bin selector: a non-negative integer or the `*` wildcard (-1).
std::int32_t parse_selector(const std::string& tok, int line) {
  if (tok == "*") return -1;
  const double v = parse_num(tok, line, "bin selector");
  const auto i = static_cast<std::int32_t>(v);
  if (static_cast<double>(i) != v || i < 0) {
    parse_fail(line, "bin selector '" + tok + "' is not a non-negative int");
  }
  return i;
}

// Out of line so the per-flow loop stays tight when tracing is off.
[[gnu::noinline]] void emit_decision_event(TraceBus& bus, Counter& counter,
                                           TimePoint now, const Flow& flow,
                                           double rate_bps,
                                           std::int32_t rule_idx) {
  TraceEvent ev;
  ev.time = now;
  ev.kind = TraceEventKind::kCcDecision;
  ev.job = flow.spec.job;
  ev.flow = flow.id;
  ev.value = rate_bps;
  ev.value2 = static_cast<double>(rule_idx);
  bus.emit(ev);
  counter.add();
}

constexpr const char* kDimNames[4] = {"rtt_us", "gradient", "ecn", "progress"};

}  // namespace

std::int32_t CcPolicyTable::bin_of(double x,
                                   const std::vector<double>& edges) {
  // Bin k holds edges[k-1] < x <= ... (upper_bound): K edges -> K+1 bins.
  return static_cast<std::int32_t>(
      std::upper_bound(edges.begin(), edges.end(), x) - edges.begin());
}

CcPolicyTable CcPolicyTable::parse(std::istream& in) {
  CcPolicyTable t;
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  bool saw_default = false;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments, then skip blank lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;

    if (!saw_header) {
      std::string v;
      if (word != "ccml-cc-table" || !(ls >> v) || v != "v1") {
        parse_fail(lineno, "expected header 'ccml-cc-table v1'");
      }
      saw_header = true;
      continue;
    }

    if (word == "cadence_us") {
      std::string tok;
      if (!(ls >> tok)) parse_fail(lineno, "cadence_us needs a value");
      const double us = parse_num(tok, lineno, "cadence");
      if (us <= 0.0) parse_fail(lineno, "cadence must be positive");
      t.cadence_ = Duration::from_micros_f(us);
    } else if (word == "bins") {
      std::string dim;
      if (!(ls >> dim)) parse_fail(lineno, "bins needs a dimension name");
      int d = -1;
      for (int i = 0; i < 4; ++i) {
        if (dim == kDimNames[i]) d = i;
      }
      if (d < 0) {
        parse_fail(lineno, "unknown dimension '" + dim +
                               "' (rtt_us|gradient|ecn|progress)");
      }
      if (!t.edges_[d].empty()) {
        parse_fail(lineno, "duplicate bins for '" + dim + "'");
      }
      std::string tok;
      while (ls >> tok) {
        const double e = parse_num(tok, lineno, "bin edge");
        if (!t.edges_[d].empty() && e <= t.edges_[d].back()) {
          parse_fail(lineno, "bin edges must be strictly ascending");
        }
        t.edges_[d].push_back(e);
      }
      if (t.edges_[d].empty()) parse_fail(lineno, "bins needs >= 1 edge");
    } else if (word == "rule") {
      Rule r;
      for (int d = 0; d < 4; ++d) {
        std::string tok;
        if (!(ls >> tok)) parse_fail(lineno, "rule needs 4 bin selectors");
        r.bins[d] = parse_selector(tok, lineno);
      }
      std::string tok;
      if (!(ls >> tok)) parse_fail(lineno, "rule needs a rate multiplier");
      r.action.rate_multiplier = parse_num(tok, lineno, "multiplier");
      if (r.action.rate_multiplier < 0.0) {
        parse_fail(lineno, "multiplier must be >= 0");
      }
      if (ls >> tok) {
        r.action.additive_bps = parse_num(tok, lineno, "additive step") * 1e6;
      }
      t.rules_.push_back(r);
    } else if (word == "default") {
      std::string tok;
      if (!(ls >> tok)) parse_fail(lineno, "default needs a rate multiplier");
      t.default_.rate_multiplier = parse_num(tok, lineno, "multiplier");
      if (t.default_.rate_multiplier < 0.0) {
        parse_fail(lineno, "multiplier must be >= 0");
      }
      if (ls >> tok) {
        t.default_.additive_bps = parse_num(tok, lineno, "additive step") * 1e6;
      }
      saw_default = true;
    } else {
      parse_fail(lineno, "unknown directive '" + word + "'");
    }
  }
  if (!saw_header) parse_fail(lineno, "missing 'ccml-cc-table v1' header");
  if (!saw_default && t.rules_.empty()) {
    parse_fail(lineno, "table has no rules and no default action");
  }
  // Validate every selector against its dimension's bin count (declared
  // edges may follow the rules textually, so this runs at the end).
  for (std::size_t i = 0; i < t.rules_.size(); ++i) {
    for (int d = 0; d < 4; ++d) {
      const std::int32_t sel = t.rules_[i].bins[d];
      const auto nbins = static_cast<std::int32_t>(t.edges_[d].size()) + 1;
      if (sel >= nbins) {
        throw std::invalid_argument(
            "cc-table rule " + std::to_string(i) + ": selector " +
            std::to_string(sel) + " out of range for " + kDimNames[d] + " (" +
            std::to_string(nbins) + " bins)");
      }
    }
  }
  t.loaded_ = true;
  return t;
}

CcPolicyTable CcPolicyTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cc-table: cannot open '" + path + "'");
  }
  return parse(in);
}

std::int32_t CcPolicyTable::lookup(const CcObservation& obs,
                                   CcAction& out) const {
  const std::int32_t b[4] = {
      bin_of(obs.rtt_us, edges_[0]),
      bin_of(obs.rtt_gradient, edges_[1]),
      bin_of(obs.ecn_fraction, edges_[2]),
      bin_of(obs.phase_progress, edges_[3]),
  };
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& r = rules_[i];
    bool match = true;
    for (int d = 0; d < 4; ++d) {
      if (r.bins[d] >= 0 && r.bins[d] != b[d]) {
        match = false;
        break;
      }
    }
    if (match) {
      out = r.action;
      return static_cast<std::int32_t>(i);
    }
  }
  out = default_;
  return -1;
}

std::string CcPolicyTable::summary() const {
  std::ostringstream os;
  for (int d = 0; d < 4; ++d) {
    if (d > 0) os << "x";
    os << edges_[d].size() + 1;
  }
  os << " bins, " << rules_.size() << " rules";
  return os.str();
}

TablePolicy::TablePolicy(TableConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      kmin_bytes_(config_.kmin.count()),
      kmax_bytes_(config_.kmax.count()) {
  assert(!config_.table.empty());
  assert(config_.kmax > config_.kmin);
  mark_scale_ = config_.pmax / (kmax_bytes_ - kmin_bytes_);
}

void TablePolicy::resize_soa(std::size_t n) {
  rate_bps_.resize(n);
  line_bps_.resize(n);
  ewma_col_.resize(n);
  grad_col_.resize(n);
  deliv_b_.resize(n);
  prev_rtt_ns_.resize(n);
  rule_col_.resize(n);
  cadence_.resize(n);
}

void TablePolicy::on_flow_started(Network& net, Flow& flow) {
  links_.ensure_links(net.topology().link_count());
  const Rate line = route_line_rate(net, flow);
  const std::uint32_t slot = net.slot_of(flow.id);
  if (rate_bps_.size() <= slot) resize_soa(net.slab_size());
  line_bps_[slot] = line.bits_per_sec();
  rate_bps_[slot] = line.bits_per_sec();
  ewma_col_[slot] = 0.0;
  grad_col_[slot] = 0.0;
  deliv_b_[slot] = 0.0;
  prev_rtt_ns_[slot] = 0;
  rule_col_[slot] = -1;
  cadence_.reset(slot);
  slots_[flow.id] = slot;
  net.set_rate(slot, line);
}

void TablePolicy::on_flow_finished(Network& /*net*/, const Flow& flow) {
  // The slot's state is left stale; a reused slot is overwritten on start.
  slots_.erase(flow.id);
}

void TablePolicy::on_link_capacity_changed(Network& net, LinkId /*link*/) {
  for (const std::uint32_t slot : net.active_slots()) {
    const Flow& flow = net.flow_at(slot);
    const Rate line = route_line_rate(net, flow);
    line_bps_[slot] = line.bits_per_sec();
    rate_bps_[slot] = std::min(rate_bps_[slot], line.bits_per_sec());
    net.set_rate(slot, Rate::bps(rate_bps_[slot]));
  }
}

void TablePolicy::update_rates(Network& net, TimePoint now, Duration dt) {
  links_.ensure_links(net.topology().link_count());
  TraceBus* bus = net.trace_bus();
  if (bus != bus_cache_) {
    bus_cache_ = bus;
    c_decision_ = bus ? &bus->counter("table.decisions") : nullptr;
  }

  // Queue pass: integrate backlog and refresh each link's RED keep-log
  // (log(1-p), summed along routes to the per-flow ECN fraction).
  const double dt_s = dt.to_seconds();
  const auto integrate = [&](std::size_t l, double arrival_bps)
      __attribute__((always_inline)) {
    const double cap_bps =
        net.effective_capacity(LinkId{static_cast<std::int32_t>(l)})
            .bits_per_sec();
    LinkState& ls = links_[l];
    double q = ls.queue_b + (arrival_bps - cap_bps) * dt_s / 8.0;
    if (q < 0.0) q = 0.0;
    ls.queue_b = q;
    const double p = red_probability(q);
    ls.log_keep = p > 0.0 ? std::log1p(-std::min(p, 1.0 - 1e-12)) : 0.0;
    return q != 0.0;
  };
  links_.step(net, net.links_in_use(), integrate);

  const std::span<const std::uint32_t> slots = net.active_slots();
  const std::span<double> rates = net.mutable_rates_bps();
  const std::int64_t dt_ns = dt.ns();
  const std::int64_t interval_ns = config_.table.cadence().ns();
  const double ewma_a = config_.ewma_alpha;
  const double base_us = config_.base_rtt.to_micros();
  const double min_bps = config_.min_rate.bits_per_sec();
  const double explore = config_.explore;
  for (const std::uint32_t slot : slots) {
    deliv_b_[slot] += rates[slot] * dt_s / 8.0;
    if (!cadence_.due(slot, dt_ns, interval_ns)) {
      rates[slot] = rate_bps_[slot];
      continue;
    }

    // Observation assembly: RTT + gradient (TIMELY's filter with Swift's
    // zero-sentinel first-sample guard), route ECN fraction, delivery.
    Duration rtt = config_.base_rtt;
    double sum_log_keep = 0.0;
    for (const std::int32_t l : net.route_links(slot)) {
      const Rate cap = net.effective_capacity(LinkId{l});
      if (cap.is_positive()) {
        rtt += transfer_time(Bytes::of(links_[l].queue_b), cap);
      }
      sum_log_keep += links_[l].log_keep;
    }
    const std::int64_t prev_ns = prev_rtt_ns_[slot];
    const double diff_us =
        prev_ns == 0 ? 0.0
                     : rtt.to_micros() - Duration::nanos(prev_ns).to_micros();
    prev_rtt_ns_[slot] = rtt.ns();
    ewma_col_[slot] = (1.0 - ewma_a) * ewma_col_[slot] + ewma_a * diff_us;
    const double gradient = ewma_col_[slot] / base_us;
    grad_col_[slot] = gradient;

    CcObservation obs;
    obs.rtt_us = rtt.to_micros();
    obs.rtt_gradient = gradient;
    obs.ecn_fraction = sum_log_keep < 0.0 ? 1.0 - std::exp(sum_log_keep) : 0.0;
    obs.delivered_bytes = deliv_b_[slot];
    obs.phase_progress = net.progress_at(slot);
    deliv_b_[slot] = 0.0;

    CcAction action;
    const std::int32_t rule = config_.table.lookup(obs, action);
    rule_col_[slot] = rule;
    if (explore > 0.0) {
      action.rate_multiplier *= 1.0 + explore * (2.0 * rng_.uniform() - 1.0);
    }
    const double rate =
        apply_cc_action(action, rate_bps_[slot], min_bps, line_bps_[slot]);
    rate_bps_[slot] = rate;
    rates[slot] = rate;
    if (bus_cache_ != nullptr) [[unlikely]] {
      emit_decision_event(*bus_cache_, *c_decision_, now, net.flow_at(slot),
                          rate, rule);
    }
  }
}

double TablePolicy::rate_bound_bps(const Network& /*net*/,
                                   std::uint32_t slot) const {
  // apply_cc_action clamps to [min_rate, line_rate]; min_rate can exceed
  // the line rate of a browned-out route, so the bound covers both.
  return std::max(line_bps_[slot], config_.min_rate.bits_per_sec());
}

Bytes TablePolicy::link_queue(LinkId link) const {
  if (!link.valid() || static_cast<std::size_t>(link.value) >= links_.size()) {
    return Bytes::zero();
  }
  return Bytes::of(links_[link.value].queue_b);
}

TablePolicy::FlowDiag TablePolicy::diag(FlowId id) const {
  const auto it = slots_.find(id);
  assert(it != slots_.end());
  const std::uint32_t slot = it->second;
  return {Rate::bps(rate_bps_[slot]), grad_col_[slot], rule_col_[slot]};
}

std::string TablePolicy::serialize_state() const {
  // Ascending flow id, same contract as the other transports.
  const auto flows = sorted_flow_slots(slots_);

  StateBuf out;
  out.put_u64(flows.size());
  for (const auto& [id, slot] : flows) {
    out.put_i64(id);
    out.put_u32(slot);
    out.put_f64(rate_bps_[slot]);
    out.put_f64(line_bps_[slot]);
    out.put_f64(ewma_col_[slot]);
    out.put_f64(grad_col_[slot]);
    out.put_f64(deliv_b_[slot]);
    out.put_i64(prev_rtt_ns_[slot]);
    out.put_i64(cadence_.since_ns(slot));
    out.put_u32(static_cast<std::uint32_t>(rule_col_[slot]));
  }
  out.put_u64(links_.size());
  for (const LinkState& l : links_.links()) out.put_f64(l.queue_b);
  out.put_u8(links_.queues_clear() ? 1 : 0);
  out.put_bytes(rng_.save_state());
  return out.take();
}

}  // namespace ccml
