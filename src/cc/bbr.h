// Fluid-level BBR-lite (Cardwell et al., "BBR: Congestion-Based Congestion
// Control", ACM Queue '16 — heavily simplified).  The fourth transport
// family in the zoo, and the only model-based one: instead of reacting to a
// congestion *signal* (ECN marks, delay), it maintains an explicit model of
// the path — bottleneck bandwidth (max filter over delivery-rate samples)
// and minimum RTT — and paces at gain * btl_bw through a four-phase state
// machine:
//
//   STARTUP   gain 2.0 until delivery stops growing startup_growth-fold for
//             startup_full_rounds consecutive decisions (pipe filled);
//   DRAIN     gain 0.5 until the route's queues are empty;
//   PROBE_BW  steady state: an 8-slot gain cycle (one probe_up, one
//             probe_down, six cruise) with a per-flow random starting slot
//             so competing flows don't probe in lock-step;
//   PROBE_RTT gain 0.5 for probe_rtt_duration whenever the min-RTT sample
//             is older than min_rtt_window, then back to PROBE_BW.
//
// Delivery rate is measured the fluid way: each tick a flow's sent volume is
// scaled by the worst drain fraction (capacity / arrival) along its route —
// the fraction of fluid that actually crosses the bottleneck rather than
// piling into its queue.
//
// BBR-lite has no additive-increase step, so there is no MLTCP wrap for it
// (cc/factory.cpp rejects the combination), and no AoS reference kernel —
// the SoA slab path is the only implementation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cc/policy/cadence.h"
#include "cc/policy/slab.h"
#include "net/policy.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/units.h"

namespace ccml {

class Counter;
class TraceBus;

struct BbrConfig {
  Duration update_interval = Duration::micros(50);  ///< decision cadence
  double startup_gain = 2.0;
  double drain_gain = 0.5;
  double probe_up_gain = 1.25;   ///< PROBE_BW slot 0
  double probe_down_gain = 0.75; ///< PROBE_BW slot 1 (slots 2-7 cruise at 1)
  /// STARTUP exits after this many consecutive decisions without the
  /// bottleneck-bandwidth estimate growing startup_growth-fold.
  double startup_growth = 1.25;
  int startup_full_rounds = 3;
  /// Bandwidth samples older than this many decisions age out of the max
  /// filter (the estimate resets to the next sample).
  int bw_window_rounds = 8;
  Duration min_rtt_window = Duration::millis(10);
  Duration probe_rtt_duration = Duration::micros(200);
  Duration base_rtt = Duration::micros(20);
  Rate min_rate = Rate::mbps(10);
  /// Seeds the per-flow PROBE_BW cycle offset (decorrelates probing).
  std::uint64_t seed = 1;
};

class BbrPolicy final : public BandwidthPolicy {
 public:
  /// BBR's four pacing phases; values are serialized and traced.
  enum class Mode : std::int32_t {
    kStartup = 0,
    kDrain = 1,
    kProbeBw = 2,
    kProbeRtt = 3,
  };
  static const char* mode_name(Mode m);

  explicit BbrPolicy(BbrConfig config = {});

  const char* name() const override { return "bbr"; }

  void on_flow_started(Network& net, Flow& flow) override;
  void on_flow_finished(Network& net, const Flow& flow) override;
  void on_link_capacity_changed(Network& net, LinkId link) override;
  void update_rates(Network& net, TimePoint now, Duration dt) override;
  /// Pacing never exceeds the route line rate (every decision clamps there),
  /// floored at min_rate.
  double rate_bound_bps(const Network& net, std::uint32_t slot) const override;
  Bytes link_queue(LinkId link) const override;
  /// With all queues drained nothing evolves between steps while no flow is
  /// active, so the kernel may fast-forward across compute phases.
  bool quiescent() const override { return links_.queues_clear(); }
  /// Path model, state machine, link queues and the cycle RNG stream in
  /// ascending-flow-id order (see the BandwidthPolicy contract).
  std::string serialize_state() const override;

  const BbrConfig& config() const { return config_; }

  struct FlowDiag {
    Rate rate;
    Rate btl_bw;        ///< bottleneck-bandwidth estimate
    Duration min_rtt;
    Mode mode = Mode::kStartup;
  };
  FlowDiag diag(FlowId id) const;

 private:
  struct LinkState {
    double queue_b = 0.0;    ///< egress backlog, bytes
    double drain_frac = 1.0; ///< capacity / arrival this tick, <= 1
    std::uint64_t stamp = 0; ///< last queue pass that touched this link
  };

  void resize_soa(std::size_t n);
  double cycle_gain(std::int32_t idx) const {
    if (idx == 0) return config_.probe_up_gain;
    if (idx == 1) return config_.probe_down_gain;
    return 1.0;
  }

  BbrConfig config_;
  Rng rng_;
  std::unordered_map<FlowId, std::uint32_t> slots_;

  // SoA columns, slot-indexed (BBR-lite is slab-only; no AoS twin).
  std::vector<double> rate_bps_;
  std::vector<double> line_bps_;
  std::vector<double> btl_bw_bps_;   ///< max-filtered delivery rate
  std::vector<double> full_bw_bps_;  ///< STARTUP growth reference
  std::vector<double> deliv_b_;      ///< bytes delivered this decision epoch
  std::vector<std::int64_t> min_rtt_ns_;
  std::vector<std::int64_t> min_rtt_stamp_ns_;  ///< when min_rtt was sampled
  std::vector<std::int64_t> probe_rtt_end_ns_;
  std::vector<std::int64_t> interval_ns_;  ///< per-flow cadence (cc_timer)
  std::vector<std::int32_t> mode_col_;
  std::vector<std::int32_t> cycle_idx_;
  std::vector<std::int32_t> bw_age_;
  std::vector<std::int32_t> full_rounds_;
  DecisionCadence cadence_;  ///< shared fixed-cadence accumulator
  /// Per-link queue + drain-fraction state behind the shared two-pass loop.
  LinkQueueSlab<LinkState> links_;
  // Re-resolved when the bound trace bus changes (same idiom as DCQCN).
  TraceBus* bus_cache_ = nullptr;
  Counter* c_phase_ = nullptr;
};

}  // namespace ccml
