#include "cc/priority.h"

#include <algorithm>
#include <map>

#include "cc/water_fill.h"

namespace ccml {

void PriorityPolicy::update_rates(Network& net, TimePoint /*now*/,
                                  Duration /*dt*/) {
  const auto flows = net.active_flows();
  const auto slots = net.active_slots();
  std::map<int, std::vector<FlowId>> classes;  // ordered: high priority first
  for (std::size_t i = 0; i < flows.size(); ++i) {
    classes[net.flow_at(slots[i]).spec.priority].push_back(flows[i]);
  }
  auto residual = full_residual(net);
  for (auto& [prio, members] : classes) {
    std::unordered_map<FlowId, double> weights;
    for (const FlowId fid : members) {
      weights[fid] = net.flow(fid).spec.weight;
    }
    auto rates = water_fill(net, members, residual, weights);
    for (const FlowId fid : members) {
      net.flow(fid).rate = rates[fid];
    }
  }
}

}  // namespace ccml
