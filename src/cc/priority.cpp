#include "cc/priority.h"

#include <algorithm>
#include <map>
#include <vector>

#include "cc/water_fill.h"

namespace ccml {

void PriorityPolicy::update_rates(Network& net, TimePoint /*now*/,
                                  Duration /*dt*/) {
  const auto slots = net.active_slots();
  std::map<int, std::vector<std::uint32_t>> classes;  // high priority first
  for (const std::uint32_t slot : slots) {
    classes[net.flow_at(slot).spec.priority].push_back(slot);
  }
  auto residual = full_residual(net);
  for (auto& [prio, members] : classes) {
    std::vector<double> weights;
    weights.reserve(members.size());
    for (const std::uint32_t slot : members) {
      weights.push_back(net.flow_at(slot).spec.weight);
    }
    const auto rates = water_fill(net, members, residual, weights);
    for (std::size_t i = 0; i < members.size(); ++i) {
      net.set_rate(members[i], rates[i]);
    }
  }
}

}  // namespace ccml
