#include "cc/max_min_fair.h"

#include "cc/water_fill.h"

namespace ccml {

void MaxMinFairPolicy::update_rates(Network& net, TimePoint /*now*/,
                                    Duration /*dt*/) {
  const auto flows = net.active_flows();
  const auto slots = net.active_slots();
  auto residual = full_residual(net);
  const std::unordered_map<FlowId, double> unit_weights;  // default weight 1
  auto rates = water_fill(net, flows, residual, unit_weights);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    net.flow_at(slots[i]).rate = rates[flows[i]];
  }
}

}  // namespace ccml
