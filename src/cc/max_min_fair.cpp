#include "cc/max_min_fair.h"

#include "cc/water_fill.h"

namespace ccml {

void MaxMinFairPolicy::update_rates(Network& net, TimePoint /*now*/,
                                    Duration /*dt*/) {
  const auto slots = net.active_slots();
  auto residual = full_residual(net);
  const auto rates = water_fill(net, slots, residual);  // unit weights
  for (std::size_t i = 0; i < slots.size(); ++i) {
    net.set_rate(slots[i], rates[i]);
  }
}

}  // namespace ccml
