#include "cc/swift.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "ckpt/snapshot.h"
#include "net/network.h"
#include "obs/trace_bus.h"

namespace ccml {

namespace {

// Out of line so the per-flow loop stays tight when tracing is off (same
// split as TIMELY's emit_decrease_event); value2 carries the gradient.
[[gnu::noinline]] void emit_decrease_event(TraceBus& bus, Counter& counter,
                                           TimePoint now, const Flow& flow,
                                           double rate_bps, double gradient) {
  TraceEvent ev;
  ev.time = now;
  ev.kind = TraceEventKind::kRateDecrease;
  ev.job = flow.spec.job;
  ev.flow = flow.id;
  ev.value = rate_bps;
  ev.value2 = gradient;
  bus.emit(ev);
  counter.add();
}

}  // namespace

SwiftDecision swift_decide(const SwiftConfig& cfg, const CcObservation& obs,
                           double target_us, double rate_bps, double ai_bps,
                           double min_bps, double line_bps) {
  SwiftDecision d;
  const double g = obs.rtt_gradient;
  if (obs.rtt_us <= target_us) {
    // Under target: additive increase, damped linearly toward zero as a
    // positive normalized gradient approaches 1 — the queue is filling even
    // though the target still holds, so probe more gently.
    const double damp = g > 0.0 ? (g < 1.0 ? 1.0 - g : 0.0) : 1.0;
    d.rate_bps = rate_bps + ai_bps * damp;
  } else {
    // Over target: multiplicative decrease proportional to the overshoot
    // fraction, amplified up to 2x by a positive gradient (overshooting
    // *and* still growing), capped at max_mdf per decision.
    double md = cfg.beta * (obs.rtt_us - target_us) / obs.rtt_us;
    if (g > 0.0) md *= 1.0 + (g < 1.0 ? g : 1.0);
    if (md > cfg.max_mdf) md = cfg.max_mdf;
    d.rate_bps = rate_bps * (1.0 - md);
    d.decreased = true;
  }
  if (d.rate_bps < min_bps) d.rate_bps = min_bps;
  if (d.rate_bps > line_bps) d.rate_bps = line_bps;
  return d;
}

SwiftPolicy::SwiftPolicy(SwiftConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.target_delay > config_.base_rtt);
  assert(config_.beta > 0.0 && config_.beta <= 1.0);
  assert(config_.max_mdf > 0.0 && config_.max_mdf < 1.0);
  assert(config_.update_interval.is_positive());
}

double SwiftPolicy::decision_target_us() {
  const double target_us = config_.target_delay.to_micros();
  if (config_.target_jitter_us == 0.0) return target_us;
  return target_us + config_.target_jitter_us * (2.0 * rng_.uniform() - 1.0);
}

void SwiftPolicy::resize_soa(std::size_t n) {
  rate_bps_.resize(n);
  line_bps_.resize(n);
  ai_bps_.resize(n);
  ewma_col_.resize(n);
  grad_col_.resize(n);
  prev_rtt_ns_.resize(n);
  cadence_.resize(n);
}

void SwiftPolicy::on_flow_started(Network& net, Flow& flow) {
  links_.ensure_links(net.topology().link_count());
  const Rate line = route_line_rate(net, flow);
  const Rate ai = flow.spec.cc_rai.is_positive() ? flow.spec.cc_rai : config_.ai;
  const std::uint32_t slot = net.slot_of(flow.id);
  if (config_.reference_kernel) {
    FlowState s;
    s.line_rate = line;
    s.rate = line;  // RDMA starts at line rate
    s.ai = ai;
    if (state_.size() <= slot) state_.resize(net.slab_size());
    state_[slot] = s;
  } else {
    if (rate_bps_.size() <= slot) resize_soa(net.slab_size());
    line_bps_[slot] = line.bits_per_sec();
    rate_bps_[slot] = line.bits_per_sec();
    ai_bps_[slot] = ai.bits_per_sec();
    ewma_col_[slot] = 0.0;
    grad_col_[slot] = 0.0;
    prev_rtt_ns_[slot] = 0;
    cadence_.reset(slot);
  }
  slots_[flow.id] = slot;
  net.set_rate(slot, line);
}

void SwiftPolicy::on_flow_finished(Network& /*net*/, const Flow& flow) {
  // The slot's state is left stale; a reused slot is overwritten on start.
  slots_.erase(flow.id);
}

void SwiftPolicy::on_link_capacity_changed(Network& net, LinkId /*link*/) {
  for (const std::uint32_t slot : net.active_slots()) {
    const Flow& flow = net.flow_at(slot);
    const Rate line = route_line_rate(net, flow);
    if (config_.reference_kernel) {
      FlowState& s = state_[slot];
      s.line_rate = line;
      s.rate = std::min(s.rate, line);
      net.set_rate(slot, s.rate);
    } else {
      line_bps_[slot] = line.bits_per_sec();
      rate_bps_[slot] = std::min(rate_bps_[slot], line.bits_per_sec());
      net.set_rate(slot, Rate::bps(rate_bps_[slot]));
    }
  }
}

void SwiftPolicy::update_rates(Network& net, TimePoint now, Duration dt) {
  links_.ensure_links(net.topology().link_count());
  TraceBus* bus = net.trace_bus();
  if (bus != bus_cache_) {
    bus_cache_ = bus;
    c_decrease_ = bus ? &bus->counter("swift.decreases") : nullptr;
  }

  // Same fluid queue model as TIMELY: integrate each in-use link's backlog,
  // with the shared slab draining leftover wet links.
  const auto integrate = [&](std::size_t l, double arrival_bps)
      __attribute__((always_inline)) {
    const Rate cap =
        net.effective_capacity(LinkId{static_cast<std::int32_t>(l)});
    Bytes q = links_[l].queue + (Rate::bps(arrival_bps) - cap) * dt;
    if (q < Bytes::zero()) q = Bytes::zero();
    links_[l].queue = q;
    return !q.is_zero();
  };
  links_.step(net, net.links_in_use(), integrate);

  if (config_.reference_kernel) {
    update_rates_reference(net, now, dt);
  } else {
    update_rates_soa(net, now, dt);
  }
}

void SwiftPolicy::update_rates_reference(Network& net, TimePoint now,
                                         Duration dt) {
  const double min_bps = config_.min_rate.bits_per_sec();
  for (const std::uint32_t slot : net.active_slots()) {
    const Flow& flow = net.flow_at(slot);
    FlowState& s = state_[slot];

    s.since_update += dt;
    if (s.since_update < config_.update_interval) {
      net.set_rate(slot, s.rate);
      continue;
    }
    s.since_update = Duration::zero();

    Duration rtt = config_.base_rtt;
    for (const LinkId lid : flow.spec.route.links) {
      const Rate cap = net.effective_capacity(lid);
      if (cap.is_positive()) {
        rtt += transfer_time(links_[lid.value].queue, cap);
      }
    }

    // First decision after flow start has no previous sample (prev_rtt is
    // the zero sentinel); a raw difference against zero would spike the
    // gradient by the whole base RTT, so treat it as zero change.
    const bool first = s.prev_rtt.is_zero();
    const double diff_us = first ? 0.0 : rtt.to_micros() - s.prev_rtt.to_micros();
    s.prev_rtt = rtt;
    s.rtt_diff_ewma = (1.0 - config_.ewma_alpha) * s.rtt_diff_ewma +
                      config_.ewma_alpha * diff_us;
    const double gradient = s.rtt_diff_ewma / config_.base_rtt.to_micros();
    s.last_gradient = gradient;

    // MLTCP wrap: additive step scales with comm-phase progress.
    double ai_bps = s.ai.bits_per_sec();
    const double progress = net.progress_at(slot);
    if (config_.phase_scaling) ai_bps = ai_bps * (1.0 + progress);

    CcObservation obs;
    obs.rtt_us = rtt.to_micros();
    obs.rtt_gradient = gradient;
    obs.phase_progress = progress;
    const SwiftDecision d =
        swift_decide(config_, obs, decision_target_us(), s.rate.bits_per_sec(),
                     ai_bps, min_bps, s.line_rate.bits_per_sec());
    s.rate = Rate::bps(d.rate_bps);
    net.set_rate(slot, s.rate);
    if (d.decreased && bus_cache_ != nullptr) [[unlikely]] {
      emit_decrease_event(*bus_cache_, *c_decrease_, now, flow, d.rate_bps,
                          gradient);
    }
  }
}

// SoA twin: identical arithmetic in identical order over the slab columns —
// both kernels funnel through swift_decide, so parity reduces to the
// observation assembly (the RTT sum keeps Duration int64-ns wrappers so
// rounding matches to the bit).
void SwiftPolicy::update_rates_soa(Network& net, TimePoint now, Duration dt) {
  const std::span<const std::uint32_t> slots = net.active_slots();
  const std::span<double> rates = net.mutable_rates_bps();
  const std::int64_t dt_ns = dt.ns();
  const std::int64_t interval_ns = config_.update_interval.ns();
  const double ewma_a = config_.ewma_alpha;
  const double base_us = config_.base_rtt.to_micros();
  const double min_bps = config_.min_rate.bits_per_sec();
  const bool scaling = config_.phase_scaling;
  for (const std::uint32_t slot : slots) {
    if (!cadence_.due(slot, dt_ns, interval_ns)) {
      rates[slot] = rate_bps_[slot];
      continue;
    }

    Duration rtt = config_.base_rtt;
    for (const std::int32_t l : net.route_links(slot)) {
      const Rate cap = net.effective_capacity(LinkId{l});
      if (cap.is_positive()) {
        rtt += transfer_time(links_[l].queue, cap);
      }
    }

    // Same zero-sentinel guard as the reference kernel (see comment there).
    const std::int64_t prev_ns = prev_rtt_ns_[slot];
    const double diff_us =
        prev_ns == 0 ? 0.0
                     : rtt.to_micros() - Duration::nanos(prev_ns).to_micros();
    prev_rtt_ns_[slot] = rtt.ns();
    ewma_col_[slot] = (1.0 - ewma_a) * ewma_col_[slot] + ewma_a * diff_us;
    const double gradient = ewma_col_[slot] / base_us;
    grad_col_[slot] = gradient;

    double ai_bps = ai_bps_[slot];
    const double progress = net.progress_at(slot);
    if (scaling) ai_bps = ai_bps * (1.0 + progress);

    CcObservation obs;
    obs.rtt_us = rtt.to_micros();
    obs.rtt_gradient = gradient;
    obs.phase_progress = progress;
    const SwiftDecision d =
        swift_decide(config_, obs, decision_target_us(), rate_bps_[slot],
                     ai_bps, min_bps, line_bps_[slot]);
    rate_bps_[slot] = d.rate_bps;
    rates[slot] = d.rate_bps;
    if (d.decreased && bus_cache_ != nullptr) [[unlikely]] {
      emit_decrease_event(*bus_cache_, *c_decrease_, now, net.flow_at(slot),
                          d.rate_bps, gradient);
    }
  }
}

double SwiftPolicy::rate_bound_bps(const Network& /*net*/,
                                   std::uint32_t slot) const {
  const double line = config_.reference_kernel
                          ? state_[slot].line_rate.bits_per_sec()
                          : line_bps_[slot];
  // swift_decide clamps to [min_rate, line_rate]; min_rate can exceed the
  // line rate of a browned-out route, so the bound covers both.
  return std::max(line, config_.min_rate.bits_per_sec());
}

Bytes SwiftPolicy::link_queue(LinkId link) const {
  if (!link.valid() || static_cast<std::size_t>(link.value) >= links_.size()) {
    return Bytes::zero();
  }
  return links_[link.value].queue;
}

SwiftPolicy::FlowDiag SwiftPolicy::diag(FlowId id) const {
  const auto it = slots_.find(id);
  assert(it != slots_.end());
  const std::uint32_t slot = it->second;
  if (config_.reference_kernel) {
    const FlowState& s = state_[slot];
    return {s.rate, s.prev_rtt, s.last_gradient};
  }
  return {Rate::bps(rate_bps_[slot]), Duration::nanos(prev_rtt_ns_[slot]),
          grad_col_[slot]};
}

std::string SwiftPolicy::serialize_state() const {
  // Ascending flow id, same contract as the other transports.
  const auto flows = sorted_flow_slots(slots_);

  StateBuf out;
  out.put_u8(config_.reference_kernel ? 1 : 0);
  out.put_u64(flows.size());
  for (const auto& [id, slot] : flows) {
    out.put_i64(id);
    out.put_u32(slot);
    if (config_.reference_kernel) {
      const FlowState& s = state_[slot];
      out.put_f64(s.rate.bits_per_sec());
      out.put_f64(s.line_rate.bits_per_sec());
      out.put_f64(s.ai.bits_per_sec());
      out.put_i64(s.prev_rtt.ns());
      out.put_f64(s.rtt_diff_ewma);
      out.put_i64(s.since_update.ns());
      out.put_f64(s.last_gradient);
    } else {
      out.put_f64(rate_bps_[slot]);
      out.put_f64(line_bps_[slot]);
      out.put_f64(ai_bps_[slot]);
      out.put_i64(prev_rtt_ns_[slot]);
      out.put_f64(ewma_col_[slot]);
      out.put_i64(cadence_.since_ns(slot));
      out.put_f64(grad_col_[slot]);
    }
  }
  out.put_u64(links_.size());
  for (const LinkState& l : links_.links()) out.put_f64(l.queue.count());
  out.put_u8(links_.queues_clear() ? 1 : 0);
  out.put_bytes(rng_.save_state());
  return out.take();
}

}  // namespace ccml
