// The observation -> action vocabulary of the pluggable CC-policy subsystem.
//
// Every transport in src/cc decides at a fixed cadence (policy/cadence.h)
// from the same small observation vector, and its decision is expressible as
// a rate action.  The built-in machines (DCQCN, TIMELY, Swift, BBR-lite)
// compute their decisions natively for speed, but the vocabulary is what
// makes the subsystem pluggable: the table-driven transport (cc/table.h)
// consumes a CcObservation verbatim and looks a CcAction up in an
// externally-trained policy table, and Swift routes its whole kernel through
// swift_decide(obs, ...) so the decision function is a pure observation ->
// action map shared bit-for-bit by its reference and SoA kernels.
//
// The field set mirrors the RL gym interface sketched in SNIPPETS.md
// (CongestionControlEnv / DistRLCC): delay, delay gradient, marking
// pressure, delivery, and the MLTCP phase-progress signal.
#pragma once

namespace ccml {

/// One decision epoch's worth of congestion signals for one flow.
struct CcObservation {
  /// Sampled end-to-end RTT: propagation base plus the queueing delay of
  /// every link on the route, in microseconds.
  double rtt_us = 0.0;
  /// EWMA-smoothed RTT difference per decision, normalized by the base RTT
  /// (TIMELY's dimensionless gradient; positive = queues growing).
  double rtt_gradient = 0.0;
  /// Probability that a packet crossing the route is ECN-marked under the
  /// RED profile, in [0, 1].  Zero for transports without marking state.
  double ecn_fraction = 0.0;
  /// Bytes delivered (progress made) since the previous decision.
  double delivered_bytes = 0.0;
  /// Bytes sent this communication phase over the phase's total — the
  /// MLTCP scaling signal; each flow carries one comm phase, so this is
  /// flow progress in [0, 1].
  double phase_progress = 0.0;
};

/// A rate action: new_rate = rate * rate_multiplier + additive_bps, then
/// clamped to the transport's [min_rate, line_rate] envelope.
struct CcAction {
  double rate_multiplier = 1.0;
  double additive_bps = 0.0;
};

/// Applies `action` to `rate_bps` inside the [min_bps, max_bps] envelope.
inline double apply_cc_action(const CcAction& action, double rate_bps,
                              double min_bps, double max_bps) {
  double r = rate_bps * action.rate_multiplier + action.additive_bps;
  if (r < min_bps) r = min_bps;
  if (r > max_bps) r = max_bps;
  return r;
}

}  // namespace ccml
