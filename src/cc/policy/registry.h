// The transport catalogue: one static record per registered PolicyKind, so
// error messages, the `ccml_sim transports` subcommand, docs tooling and the
// orchestrator's profile-compatibility derivation all read the same list.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "cc/factory.h"

namespace ccml {

/// One tunable a transport exposes, with its compiled-in preset.
struct TransportTunable {
  const char* name;     ///< config field, e.g. "timer"
  const char* preset;   ///< default value, e.g. "125us"
  const char* meaning;  ///< one-line description
};

/// Static metadata for one registered transport.
struct TransportInfo {
  PolicyKind kind;
  const char* name;     ///< the parse_policy_kind spelling
  const char* family;   ///< "ideal" | "ecn" | "delay" | "model" | "table"
  const char* summary;  ///< one-line catalogue entry
  /// Fraction of nominal NIC goodput the orchestrator's admission model
  /// assumes this transport sustains (1.0 = no derating).  Model-based
  /// probing (BBR) periodically paces above/below the bottleneck, costing a
  /// small steady-state fraction; every reactive AIMD transport here
  /// converges to the full rate.
  double goodput_derating;
  /// Whether an MLTCP-scaled variant exists (the transport has an additive
  /// increase step the wrapper can multiply).
  bool mltcp_wrappable;
  std::span<const TransportTunable> tunables;
};

/// Every registered transport, in PolicyKind order.
std::span<const TransportInfo> transport_catalogue();

/// The catalogue row for `kind`.
const TransportInfo& transport_info(PolicyKind kind);

/// Comma-separated registered names ("maxmin, wfq, ..."), for error text.
std::string registered_transport_names();

/// transport_info(kind).goodput_derating — the orchestrator multiplies its
/// admission goodput factor by this, so profile compatibility is derived
/// per transport rather than assuming DCQCN everywhere.
double transport_goodput_derating(PolicyKind kind);

}  // namespace ccml
