#include "cc/policy/registry.h"

#include <cassert>

namespace ccml {

namespace {

constexpr TransportTunable kDcqcnTunables[] = {
    {"kmin/kmax/pmax", "50KB/200KB/0.01", "RED/ECN marking profile"},
    {"timer", "125us", "RP increase timer T (FlowSpec::cc_timer overrides)"},
    {"byte_counter", "10MB", "RP increase byte counter B"},
    {"rai", "40Mbps", "additive step R_AI (FlowSpec::cc_rai overrides)"},
    {"rhai", "200Mbps", "hyper-increase step R_HAI"},
    {"g", "1/256", "alpha EWMA gain"},
    {"deterministic_marking", "true", "expected-marks CNPs vs Bernoulli"},
};

constexpr TransportTunable kTimelyTunables[] = {
    {"t_low/t_high", "50us/500us", "RTT thresholds bracketing gradient mode"},
    {"delta", "10Mbps", "additive step (FlowSpec::cc_rai overrides)"},
    {"beta", "0.8", "multiplicative-decrease factor"},
    {"hai_threshold", "5", "good rounds before hyper increase"},
    {"update_interval", "25us", "decision cadence"},
    {"ewma_alpha", "0.46", "RTT-gradient filter weight"},
};

constexpr TransportTunable kSwiftTunables[] = {
    {"target_delay", "60us", "absolute end-to-end RTT target"},
    {"ai", "20Mbps", "additive step (FlowSpec::cc_rai overrides)"},
    {"beta", "0.8", "decrease aggressiveness"},
    {"max_mdf", "0.5", "max multiplicative decrease per decision"},
    {"update_interval", "25us", "decision cadence"},
    {"target_jitter_us", "0", "random target jitter (seeded RNG stream)"},
};

constexpr TransportTunable kBbrTunables[] = {
    {"update_interval", "50us", "decision cadence (FlowSpec::cc_timer overrides)"},
    {"startup_gain/drain_gain", "2.0/0.5", "STARTUP / DRAIN pacing gains"},
    {"probe_up_gain/probe_down_gain", "1.25/0.75", "PROBE_BW cycle gains"},
    {"bw_window_rounds", "8", "bandwidth max-filter window, in decisions"},
    {"min_rtt_window", "10ms", "min-RTT staleness before PROBE_RTT"},
    {"seed", "1", "per-flow PROBE_BW cycle-offset stream"},
};

constexpr TransportTunable kTableTunables[] = {
    {"table", "(required)", "--cc-policy-table FILE, ccml-cc-table v1 format"},
    {"cadence_us", "50 (from table)", "decision cadence"},
    {"kmin/kmax/pmax", "50KB/200KB/0.01", "RED profile for the ECN signal"},
    {"explore", "0", "epsilon multiplier jitter (seeded RNG stream)"},
};

constexpr TransportTunable kNoTunables[] = {
    {"(none)", "-", "ideal allocator; no queue dynamics"},
};

const TransportInfo kCatalogue[] = {
    {PolicyKind::kMaxMinFair, "maxmin", "ideal",
     "instantaneous max-min fair shares (progressive water-fill)", 1.0, false,
     kNoTunables},
    {PolicyKind::kWfq, "wfq", "ideal",
     "weighted fair shares (FlowSpec::weight)", 1.0, false, kNoTunables},
    {PolicyKind::kPriority, "priority", "ideal",
     "strict priority classes, fair within a class", 1.0, false, kNoTunables},
    {PolicyKind::kDcqcn, "dcqcn", "ecn",
     "ECN-driven RP/CP rate machine (Zhu et al., SIGCOMM '15)", 1.0, true,
     kDcqcnTunables},
    {PolicyKind::kDcqcnAdaptive, "dcqcn-adaptive", "ecn",
     "DCQCN with R_AI scaled by comm-phase progress (paper §4)", 1.0, true,
     kDcqcnTunables},
    {PolicyKind::kTimely, "timely", "delay",
     "RTT-gradient rate control (Mittal et al., SIGCOMM '15)", 1.0, true,
     kTimelyTunables},
    {PolicyKind::kSwift, "swift", "delay",
     "absolute delay-target control with gradient scaling (SIGCOMM '20)", 1.0,
     true, kSwiftTunables},
    {PolicyKind::kBbr, "bbr", "model",
     "delivery-rate / min-RTT model with probing state machine", 0.97, false,
     kBbrTunables},
    {PolicyKind::kTable, "table", "table",
     "externally-trained observation->action lookup (--cc-policy-table)", 1.0,
     false, kTableTunables},
    {PolicyKind::kMltcpDcqcn, "mltcp-dcqcn", "ecn",
     "MLTCP wrap of dcqcn (alias of dcqcn-adaptive's R_AI scaling)", 1.0,
     false, kDcqcnTunables},
    {PolicyKind::kMltcpTimely, "mltcp-timely", "delay",
     "MLTCP wrap of timely: delta scaled by phase progress", 1.0, false,
     kTimelyTunables},
    {PolicyKind::kMltcpSwift, "mltcp-swift", "delay",
     "MLTCP wrap of swift: AI step scaled by phase progress", 1.0, false,
     kSwiftTunables},
};

}  // namespace

std::span<const TransportInfo> transport_catalogue() { return kCatalogue; }

const TransportInfo& transport_info(PolicyKind kind) {
  for (const TransportInfo& t : kCatalogue) {
    if (t.kind == kind) return t;
  }
  assert(false && "PolicyKind missing from the transport catalogue");
  return kCatalogue[0];
}

std::string registered_transport_names() {
  std::string names;
  for (const TransportInfo& t : kCatalogue) {
    if (!names.empty()) names += ", ";
    names += t.name;
  }
  return names;
}

double transport_goodput_derating(PolicyKind kind) {
  return transport_info(kind).goodput_derating;
}

}  // namespace ccml
