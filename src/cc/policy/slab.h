// Shared slab scaffolding for the per-link queue pass every transport runs.
//
// DCQCN and TIMELY grew structurally identical hot loops: stamp the links
// that can queue this tick, sum per-link arrival from the network's rate
// slab, integrate each queue through a transport-specific fluid update, then
// drain stale backlog on links the hot set no longer covers.  This header is
// that loop, written once — the transport supplies its LinkState record and
// an integrate functor, and LinkQueueSlab owns the wet-list bookkeeping, the
// step stamps, and the queues-clear quiescence flag.
//
// Bit-identity contract: the scaffold preserves the exact iteration order
// and floating-point arithmetic of the pre-subsystem per-transport loops —
// hot links in range order (stamped before integration), then leftover wet
// links in last-pass order with their true arrival sums (zero once their
// flows departed).  tests/cc_kernel_parity_test.cpp and the golden pre-port
// hashes in tests/cc_transport_zoo_test.cpp hold it to that.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/network.h"

namespace ccml {

/// Minimum effective capacity along `flow`'s route — the line rate every
/// transport caches per flow at start (and re-derives on capacity changes).
inline Rate route_line_rate(const Network& net, const Flow& flow) {
  Rate line = Rate::gbps(1e9);  // effectively infinite until min'ed below
  for (const LinkId lid : flow.spec.route.links) {
    line = std::min(line, net.effective_capacity(lid));
  }
  return line;
}

/// The (flow id, slot) pairs of `slots` in ascending-id order — the
/// serialization contract of BandwidthPolicy::serialize_state (identical
/// live state must yield identical bytes; the map's order is not stable).
inline std::vector<std::pair<std::int64_t, std::uint32_t>> sorted_flow_slots(
    const std::unordered_map<FlowId, std::uint32_t>& slots) {
  std::vector<std::pair<std::int64_t, std::uint32_t>> flows;
  flows.reserve(slots.size());
  for (const auto& [id, slot] : slots) flows.emplace_back(id.value, slot);
  std::sort(flows.begin(), flows.end());
  return flows;
}

/// The per-link queue slab: storage plus the stamped two-pass step loop.
/// `LinkState` must carry a `std::uint64_t stamp` member; everything else
/// (queue representation, cached capacity, marking state) is the
/// transport's business, touched only through its integrate functor.
template <typename LinkState>
class LinkQueueSlab {
 public:
  /// Grows the slab to the topology's link count (values preserved).
  void ensure_links(std::size_t n) {
    if (links_.size() < n) links_.resize(n);
  }
  std::size_t size() const { return links_.size(); }

  LinkState& operator[](std::size_t l) { return links_[l]; }
  const LinkState& operator[](std::size_t l) const { return links_[l]; }
  const std::vector<LinkState>& links() const { return links_; }

  /// True when every queue drained on the last step — the transports'
  /// quiescence signal (nothing evolves between steps while no flow is
  /// active and no backlog remains).
  bool queues_clear() const { return queues_clear_; }

  /// One queue pass.  `hot` is the transport's set of links that can queue
  /// under the current flow set (DCQCN's congestible cp_links, TIMELY's
  /// links-in-use); elements may be LinkId or raw indices.  `integrate` is
  /// called as integrate(link_index, arrival_bps) and returns true when the
  /// link holds backlog after the update (it then joins the wet list and
  /// clears the quiescence flag).  Wet links missed by the hot set drain
  /// against their true arrival sum — zero once their flows departed.
  template <typename HotRange, typename Integrate>
  void step(const Network& net, const HotRange& hot, Integrate&& integrate) {
    ++step_stamp_;
    bool clear = true;
    scratch_wet_.clear();
    const std::span<const double> rates = net.rates_bps();
    const auto arrival = [&](std::size_t l) __attribute__((always_inline)) {
      double arrival_bps = 0.0;
      for (const std::uint32_t slot :
           net.flow_slots_on_link(LinkId{static_cast<std::int32_t>(l)})) {
        arrival_bps += rates[slot];
      }
      return arrival_bps;
    };
    for (const auto h : hot) {
      const std::size_t l = link_index(h);
      links_[l].stamp = step_stamp_;
      if (integrate(l, arrival(l))) {
        clear = false;
        scratch_wet_.push_back(static_cast<std::uint32_t>(l));
      }
    }
    for (const std::uint32_t l : wet_links_) {
      if (links_[l].stamp != step_stamp_) {
        if (integrate(static_cast<std::size_t>(l), arrival(l))) {
          clear = false;
          scratch_wet_.push_back(l);
        }
      }
    }
    wet_links_.swap(scratch_wet_);
    queues_clear_ = clear;
  }

 private:
  static std::size_t link_index(LinkId id) {
    return static_cast<std::size_t>(id.value);
  }
  static std::size_t link_index(std::int32_t l) {
    return static_cast<std::size_t>(l);
  }
  static std::size_t link_index(std::uint32_t l) { return l; }

  std::vector<LinkState> links_;
  bool queues_clear_ = true;   // refreshed by each step
  std::uint64_t step_stamp_ = 0;
  std::vector<std::uint32_t> wet_links_;    // links with backlog after the
  std::vector<std::uint32_t> scratch_wet_;  // previous pass (+ scratch)
};

}  // namespace ccml
