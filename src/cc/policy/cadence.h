// The fixed decision cadence shared by every rate machine in src/cc.
//
// A transport observes the network every simulator tick but *decides* only
// once per update interval.  The accumulator is integer nanoseconds so the
// cadence is exact: ticks never alias against the interval, and a fused
// burst (Network::step_burst) that spans several intervals fires exactly the
// same decisions at exactly the same ticks as per-tick stepping — the
// property tests/cc_policy_cadence_test.cpp holds every transport to.
//
// This is TIMELY's original since-last-update pattern, hoisted so DCQCN-era
// transports and the new Swift/BBR-lite/table machines share one
// implementation (and one serialization shape) instead of five copies.
#pragma once

#include <cstdint>
#include <vector>

namespace ccml {

class DecisionCadence {
 public:
  /// Grows the accumulator column to `n` slots (slot-indexed like every
  /// other SoA column; existing values are preserved).
  void resize(std::size_t n) { since_ns_.resize(n); }
  std::size_t size() const { return since_ns_.size(); }

  /// Arms a (re)used slot: the first decision fires one full interval after
  /// the flow starts.
  void reset(std::uint32_t slot) { since_ns_[slot] = 0; }

  /// Advances `slot` by `dt_ns` and reports whether a decision is due.
  /// Firing snaps the accumulator to zero — a decision interval longer than
  /// a burst window simply stays quiet across it; leftover phase is not
  /// carried (matching the pre-subsystem TIMELY semantics exactly).
  bool due(std::uint32_t slot, std::int64_t dt_ns, std::int64_t interval_ns) {
    since_ns_[slot] += dt_ns;
    if (since_ns_[slot] < interval_ns) return false;
    since_ns_[slot] = 0;
    return true;
  }

  /// Serialization access: the raw accumulator for `slot`.
  std::int64_t since_ns(std::uint32_t slot) const { return since_ns_[slot]; }
  std::int64_t& mutable_since_ns(std::uint32_t slot) {
    return since_ns_[slot];
  }

 private:
  std::vector<std::int64_t> since_ns_;
};

}  // namespace ccml
