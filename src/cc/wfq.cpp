#include "cc/wfq.h"

#include <vector>

#include "cc/water_fill.h"

namespace ccml {

void WfqPolicy::update_rates(Network& net, TimePoint /*now*/, Duration /*dt*/) {
  const auto slots = net.active_slots();
  auto residual = full_residual(net);
  std::vector<double> weights;
  weights.reserve(slots.size());
  for (const std::uint32_t slot : slots) {
    weights.push_back(net.flow_at(slot).spec.weight);
  }
  const auto rates = water_fill(net, slots, residual, weights);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    net.set_rate(slots[i], rates[i]);
  }
}

}  // namespace ccml
