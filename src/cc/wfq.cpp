#include "cc/wfq.h"

#include "cc/water_fill.h"

namespace ccml {

void WfqPolicy::update_rates(Network& net, TimePoint /*now*/, Duration /*dt*/) {
  const auto flows = net.active_flows();
  const auto slots = net.active_slots();
  auto residual = full_residual(net);
  std::unordered_map<FlowId, double> weights;
  weights.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    weights[flows[i]] = net.flow_at(slots[i]).spec.weight;
  }
  auto rates = water_fill(net, flows, residual, weights);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    net.flow_at(slots[i]).rate = rates[flows[i]];
  }
}

}  // namespace ccml
