#include "cc/wfq.h"

#include "cc/water_fill.h"

namespace ccml {

void WfqPolicy::update_rates(Network& net, TimePoint /*now*/, Duration /*dt*/) {
  const auto flows = net.active_flows();
  auto residual = full_residual(net);
  std::unordered_map<FlowId, double> weights;
  weights.reserve(flows.size());
  for (const FlowId fid : flows) {
    weights[fid] = net.flow(fid).spec.weight;
  }
  auto rates = water_fill(net, flows, residual, weights);
  for (const FlowId fid : flows) {
    net.flow(fid).rate = rates[fid];
  }
}

}  // namespace ccml
