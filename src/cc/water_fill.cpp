#include "cc/water_fill.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ccml {

std::vector<Rate> full_residual(const Network& net) {
  std::vector<Rate> residual(net.topology().link_count());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = net.effective_capacity(LinkId{static_cast<std::int32_t>(i)});
  }
  return residual;
}

std::unordered_map<FlowId, Rate> water_fill(
    const Network& net, std::span<const FlowId> flows,
    std::vector<Rate>& residual,
    const std::unordered_map<FlowId, double>& weights) {
  std::unordered_map<FlowId, Rate> rates;
  rates.reserve(flows.size());

  // Resolve ids and weights once up front so the fill rounds below touch no
  // hash table.
  struct Member {
    FlowId id;
    const Flow* flow;
    double weight;
  };
  std::vector<Member> unfrozen;
  unfrozen.reserve(flows.size());
  for (const FlowId fid : flows) {
    const auto wit = weights.find(fid);
    const double w = wit == weights.end() ? 1.0 : wit->second;
    if (w <= 0.0) {
      rates[fid] = Rate::zero();
    } else {
      unfrozen.push_back({fid, &net.flow(fid), w});
    }
  }

  // Per-link weight of unfrozen flows crossing it.
  std::vector<double> link_weight(residual.size(), 0.0);
  auto recompute_link_weights = [&] {
    std::fill(link_weight.begin(), link_weight.end(), 0.0);
    for (const Member& m : unfrozen) {
      for (const LinkId lid : m.flow->spec.route.links) {
        link_weight[lid.value] += m.weight;
      }
    }
  };

  while (!unfrozen.empty()) {
    recompute_link_weights();
    // Bottleneck link: minimum residual capacity per unit weight.
    double theta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < residual.size(); ++l) {
      if (link_weight[l] > 0.0) {
        theta = std::min(theta, residual[l].bits_per_sec() / link_weight[l]);
      }
    }
    if (!std::isfinite(theta)) break;  // no unfrozen flow crosses any link
    theta = std::max(theta, 0.0);

    // Freeze every flow crossing a bottleneck link at weight * theta.  The
    // freeze set is decided against the residual as of the start of the
    // round; capacity is only subtracted afterwards (subtracting mid-pass
    // would make later flows in the same round look bottlenecked too).
    std::vector<Member> frozen;
    std::vector<Member> still;
    still.reserve(unfrozen.size());
    constexpr double kSlack = 1.0 + 1e-12;
    for (const Member& m : unfrozen) {
      bool bottlenecked = false;
      for (const LinkId lid : m.flow->spec.route.links) {
        const double share =
            residual[lid.value].bits_per_sec() / link_weight[lid.value];
        if (share <= theta * kSlack) {
          bottlenecked = true;
          break;
        }
      }
      (bottlenecked ? frozen : still).push_back(m);
    }
    for (const Member& m : frozen) {
      const Rate r = Rate::bps(m.weight * theta);
      rates[m.id] = r;
      for (const LinkId lid : m.flow->spec.route.links) {
        residual[lid.value] -= r;
        if (residual[lid.value] < Rate::zero()) {
          residual[lid.value] = Rate::zero();
        }
      }
    }
    assert(still.size() < unfrozen.size() && "progress each round");
    unfrozen = std::move(still);
  }
  return rates;
}

}  // namespace ccml
