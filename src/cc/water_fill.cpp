#include "cc/water_fill.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ccml {

std::vector<Rate> full_residual(const Network& net) {
  std::vector<Rate> residual(net.topology().link_count());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = net.effective_capacity(LinkId{static_cast<std::int32_t>(i)});
  }
  return residual;
}

std::vector<Rate> water_fill(const Network& net,
                             std::span<const std::uint32_t> slots,
                             std::vector<Rate>& residual,
                             std::span<const double> weights) {
  assert(weights.empty() || weights.size() == slots.size());
  std::vector<Rate> rates(slots.size(), Rate::zero());

  // Gather each member's slot, output index and weight once up front so the
  // fill rounds below are pure array walks.
  struct Member {
    std::uint32_t idx;   // position in `slots` / `rates`
    std::uint32_t slot;  // network slab slot (route lookup)
    double weight;
  };
  std::vector<Member> unfrozen;
  unfrozen.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w > 0.0) {
      unfrozen.push_back(
          {static_cast<std::uint32_t>(i), slots[i], w});
    }
  }

  // Per-link weight of unfrozen flows crossing it.
  std::vector<double> link_weight(residual.size(), 0.0);
  auto recompute_link_weights = [&] {
    std::fill(link_weight.begin(), link_weight.end(), 0.0);
    for (const Member& m : unfrozen) {
      for (const std::int32_t l : net.route_links(m.slot)) {
        link_weight[l] += m.weight;
      }
    }
  };

  while (!unfrozen.empty()) {
    recompute_link_weights();
    // Bottleneck link: minimum residual capacity per unit weight.
    double theta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < residual.size(); ++l) {
      if (link_weight[l] > 0.0) {
        theta = std::min(theta, residual[l].bits_per_sec() / link_weight[l]);
      }
    }
    if (!std::isfinite(theta)) break;  // no unfrozen flow crosses any link
    theta = std::max(theta, 0.0);

    // Freeze every flow crossing a bottleneck link at weight * theta.  The
    // freeze set is decided against the residual as of the start of the
    // round; capacity is only subtracted afterwards (subtracting mid-pass
    // would make later flows in the same round look bottlenecked too).
    std::vector<Member> frozen;
    std::vector<Member> still;
    still.reserve(unfrozen.size());
    constexpr double kSlack = 1.0 + 1e-12;
    for (const Member& m : unfrozen) {
      bool bottlenecked = false;
      for (const std::int32_t l : net.route_links(m.slot)) {
        const double share = residual[l].bits_per_sec() / link_weight[l];
        if (share <= theta * kSlack) {
          bottlenecked = true;
          break;
        }
      }
      (bottlenecked ? frozen : still).push_back(m);
    }
    for (const Member& m : frozen) {
      const Rate r = Rate::bps(m.weight * theta);
      rates[m.idx] = r;
      for (const std::int32_t l : net.route_links(m.slot)) {
        residual[l] -= r;
        if (residual[l] < Rate::zero()) {
          residual[l] = Rate::zero();
        }
      }
    }
    assert(still.size() < unfrozen.size() && "progress each round");
    unfrozen = std::move(still);
  }
  return rates;
}

}  // namespace ccml
