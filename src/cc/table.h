// Table-driven congestion control: the pluggable endpoint of the CC-policy
// subsystem.  Where DCQCN/TIMELY/Swift/BBR hard-code their update equations,
// this transport assembles the standard CcObservation each decision epoch,
// quantizes it against externally supplied bin edges, and looks the action
// up in a rule table — the shape an offline-trained policy (the RL gyms in
// SNIPPETS.md, or a hand-written heuristic) plugs into the simulator without
// recompiling.
//
// Table text format (`--cc-policy-table FILE`, parsed by CcPolicyTable):
//
//   ccml-cc-table v1
//   # comment lines and blanks are ignored
//   cadence_us 50
//   bins rtt_us 40 80 200        # 3 edges -> bins 0..3 (upper_bound)
//   bins gradient 0
//   bins ecn 0.05 0.3
//   bins progress 0.5
//   rule 3 * * * 0.7             # rtt in top bin -> rate *= 0.7
//   rule * 1 * * 0.85            # gradient positive -> rate *= 0.85
//   default 1.0 40               # otherwise rate += 40 Mbps
//
// A rule is four bin selectors (index or `*` wildcard, dimension order
// rtt_us / gradient / ecn / progress) plus a rate multiplier and an optional
// additive step in Mbps; the first matching rule wins and `default` catches
// the rest.  Undeclared dimensions have a single bin (index 0).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/policy/cadence.h"
#include "cc/policy/observation.h"
#include "cc/policy/slab.h"
#include "net/policy.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/units.h"

namespace ccml {

class Counter;
class TraceBus;

/// A parsed policy table: bin edges per observation dimension plus an
/// ordered rule list.  Value type; cheap to copy into TableConfig.
class CcPolicyTable {
 public:
  struct Rule {
    // Bin selector per dimension; -1 is the `*` wildcard.
    std::int32_t bins[4] = {-1, -1, -1, -1};
    CcAction action;
  };

  /// Parses the `ccml-cc-table v1` text format; throws std::invalid_argument
  /// with a line number on malformed input.
  static CcPolicyTable parse(std::istream& in);
  /// Reads and parses `path`; throws std::invalid_argument when the file
  /// cannot be opened or fails to parse.
  static CcPolicyTable load(const std::string& path);

  /// True for a default-constructed table (nothing parsed); the factory
  /// rejects building a table transport from one.
  bool empty() const { return !loaded_; }

  Duration cadence() const { return cadence_; }
  std::size_t rule_count() const { return rules_.size(); }
  const std::vector<Rule>& rules() const { return rules_; }
  const CcAction& default_action() const { return default_; }

  /// Quantizes `obs` and scans the rule list; returns the matched rule's
  /// index (its action in `out`) or -1 when the default action applied.
  std::int32_t lookup(const CcObservation& obs, CcAction& out) const;

  /// One-line shape summary, e.g. "4x2x3x2 bins, 5 rules" (diagnostics and
  /// the `ccml_sim transports` catalogue).
  std::string summary() const;

 private:
  static std::int32_t bin_of(double x, const std::vector<double>& edges);

  Duration cadence_ = Duration::micros(50);
  // Edge vectors in dimension order: rtt_us, gradient, ecn, progress.
  std::vector<double> edges_[4];
  std::vector<Rule> rules_;
  CcAction default_;
  bool loaded_ = false;
};

struct TableConfig {
  CcPolicyTable table;  ///< must be non-empty (factory-enforced)

  // Observation assembly (the same signal models the native transports use).
  Duration base_rtt = Duration::micros(20);
  double ewma_alpha = 0.46;   ///< RTT-gradient filter weight
  Bytes kmin = Bytes::kilo(50);   ///< RED profile for the ECN fraction
  Bytes kmax = Bytes::kilo(200);
  double pmax = 0.01;
  Rate min_rate = Rate::mbps(10);

  /// Epsilon-exploration: with this probability-weighted amplitude the rate
  /// multiplier is jittered by up to +/- explore (drawn from the seeded RNG
  /// stream), the knob an RL training loop uses to gather off-policy data.
  /// Zero (default) draws nothing and the transport is fully deterministic;
  /// the RNG stream is checkpointed either way.
  double explore = 0.0;
  std::uint64_t seed = 1;
};

class TablePolicy final : public BandwidthPolicy {
 public:
  explicit TablePolicy(TableConfig config);

  const char* name() const override { return "table"; }

  void on_flow_started(Network& net, Flow& flow) override;
  void on_flow_finished(Network& net, const Flow& flow) override;
  void on_link_capacity_changed(Network& net, LinkId link) override;
  void update_rates(Network& net, TimePoint now, Duration dt) override;
  /// apply_cc_action clamps to [min_rate, line_rate]; bound covers both.
  double rate_bound_bps(const Network& net, std::uint32_t slot) const override;
  Bytes link_queue(LinkId link) const override;
  /// With all queues drained nothing evolves between steps while no flow is
  /// active, so the kernel may fast-forward across compute phases.
  bool quiescent() const override { return links_.queues_clear(); }
  /// Observation-assembly state, link queues and the exploration RNG stream
  /// in ascending-flow-id order (see the BandwidthPolicy contract).
  std::string serialize_state() const override;

  const TableConfig& config() const { return config_; }

  struct FlowDiag {
    Rate rate;
    double gradient = 0.0;
    std::int32_t last_rule = -1;  ///< matched rule index, -1 = default
  };
  FlowDiag diag(FlowId id) const;

 private:
  struct LinkState {
    double queue_b = 0.0;   ///< egress backlog, bytes
    double log_keep = 0.0;  ///< log(1 - mark probability), for route ECN
    std::uint64_t stamp = 0;
  };

  void resize_soa(std::size_t n);
  double red_probability(double queue_bytes) const {
    if (queue_bytes <= kmin_bytes_) return 0.0;
    if (queue_bytes >= kmax_bytes_) return 1.0;
    return (queue_bytes - kmin_bytes_) * mark_scale_;
  }

  TableConfig config_;
  Rng rng_;
  std::unordered_map<FlowId, std::uint32_t> slots_;

  // SoA columns, slot-indexed (slab-only; no AoS twin).
  std::vector<double> rate_bps_;
  std::vector<double> line_bps_;
  std::vector<double> ewma_col_;
  std::vector<double> grad_col_;
  std::vector<double> deliv_b_;  ///< bytes sent this decision epoch
  std::vector<std::int64_t> prev_rtt_ns_;
  std::vector<std::int32_t> rule_col_;  ///< last matched rule, for diag
  DecisionCadence cadence_;  ///< shared fixed-cadence accumulator
  /// Per-link queue + marking state behind the shared two-pass step loop.
  LinkQueueSlab<LinkState> links_;
  double kmin_bytes_ = 0.0;
  double kmax_bytes_ = 0.0;
  double mark_scale_ = 0.0;  // pmax / (kmax - kmin), per byte
  // Re-resolved when the bound trace bus changes (same idiom as DCQCN).
  TraceBus* bus_cache_ = nullptr;
  Counter* c_decision_ = nullptr;
};

}  // namespace ccml
