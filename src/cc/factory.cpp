#include "cc/factory.h"

#include <stdexcept>

#include "cc/max_min_fair.h"
#include "cc/priority.h"
#include "cc/wfq.h"

namespace ccml {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMaxMinFair: return "maxmin";
    case PolicyKind::kWfq: return "wfq";
    case PolicyKind::kPriority: return "priority";
    case PolicyKind::kDcqcn: return "dcqcn";
    case PolicyKind::kDcqcnAdaptive: return "dcqcn-adaptive";
    case PolicyKind::kTimely: return "timely";
  }
  return "?";
}

std::unique_ptr<BandwidthPolicy> make_policy(PolicyKind kind,
                                             DcqcnConfig dcqcn,
                                             TimelyConfig timely) {
  switch (kind) {
    case PolicyKind::kMaxMinFair:
      return std::make_unique<MaxMinFairPolicy>();
    case PolicyKind::kWfq:
      return std::make_unique<WfqPolicy>();
    case PolicyKind::kPriority:
      return std::make_unique<PriorityPolicy>();
    case PolicyKind::kDcqcn:
      dcqcn.adaptive_rai = false;
      return std::make_unique<DcqcnPolicy>(dcqcn);
    case PolicyKind::kDcqcnAdaptive:
      dcqcn.adaptive_rai = true;
      return std::make_unique<DcqcnPolicy>(dcqcn);
    case PolicyKind::kTimely:
      return std::make_unique<TimelyPolicy>(timely);
  }
  throw std::invalid_argument("unknown policy kind");
}

PolicyKind parse_policy_kind(const std::string& name) {
  if (name == "maxmin") return PolicyKind::kMaxMinFair;
  if (name == "wfq") return PolicyKind::kWfq;
  if (name == "priority") return PolicyKind::kPriority;
  if (name == "dcqcn") return PolicyKind::kDcqcn;
  if (name == "dcqcn-adaptive") return PolicyKind::kDcqcnAdaptive;
  if (name == "timely") return PolicyKind::kTimely;
  throw std::invalid_argument("unknown policy: " + name);
}

}  // namespace ccml
