#include "cc/factory.h"

#include <stdexcept>

#include "cc/max_min_fair.h"
#include "cc/policy/registry.h"
#include "cc/priority.h"
#include "cc/wfq.h"

namespace ccml {

const char* to_string(PolicyKind kind) { return transport_info(kind).name; }

std::unique_ptr<BandwidthPolicy> make_policy(
    PolicyKind kind, const TransportConfig& transports) {
  switch (kind) {
    case PolicyKind::kMaxMinFair:
      return std::make_unique<MaxMinFairPolicy>();
    case PolicyKind::kWfq:
      return std::make_unique<WfqPolicy>();
    case PolicyKind::kPriority:
      return std::make_unique<PriorityPolicy>();
    case PolicyKind::kDcqcn: {
      DcqcnConfig cfg = transports.dcqcn;
      cfg.adaptive_rai = false;
      return std::make_unique<DcqcnPolicy>(cfg);
    }
    case PolicyKind::kDcqcnAdaptive: {
      DcqcnConfig cfg = transports.dcqcn;
      cfg.adaptive_rai = true;
      return std::make_unique<DcqcnPolicy>(cfg);
    }
    case PolicyKind::kTimely: {
      TimelyConfig cfg = transports.timely;
      cfg.phase_scaling = false;
      return std::make_unique<TimelyPolicy>(cfg);
    }
    case PolicyKind::kSwift: {
      SwiftConfig cfg = transports.swift;
      cfg.phase_scaling = false;
      return std::make_unique<SwiftPolicy>(cfg);
    }
    case PolicyKind::kBbr:
      return std::make_unique<BbrPolicy>(transports.bbr);
    case PolicyKind::kTable:
      if (transports.table.table.empty()) {
        throw std::invalid_argument(
            "table transport needs a policy table (--cc-policy-table FILE)");
      }
      return std::make_unique<TablePolicy>(transports.table);
    // The MLTCP wrapper multiplies a base transport's additive-increase step
    // by (1 + bytes_sent / phase_bytes).  For DCQCN that is exactly the
    // adaptive_rai machine; for TIMELY and Swift it is their phase_scaling
    // flag.  BBR has no additive step to scale, so no mltcp-bbr exists.
    case PolicyKind::kMltcpDcqcn: {
      DcqcnConfig cfg = transports.dcqcn;
      cfg.adaptive_rai = true;
      return std::make_unique<DcqcnPolicy>(cfg);
    }
    case PolicyKind::kMltcpTimely: {
      TimelyConfig cfg = transports.timely;
      cfg.phase_scaling = true;
      return std::make_unique<TimelyPolicy>(cfg);
    }
    case PolicyKind::kMltcpSwift: {
      SwiftConfig cfg = transports.swift;
      cfg.phase_scaling = true;
      return std::make_unique<SwiftPolicy>(cfg);
    }
  }
  throw std::invalid_argument("unknown policy kind");
}

std::unique_ptr<BandwidthPolicy> make_policy(PolicyKind kind,
                                             DcqcnConfig dcqcn,
                                             TimelyConfig timely) {
  TransportConfig transports;
  transports.dcqcn = dcqcn;
  transports.timely = timely;
  return make_policy(kind, transports);
}

PolicyKind parse_policy_kind(const std::string& name) {
  for (const TransportInfo& t : transport_catalogue()) {
    if (name == t.name) return t.kind;
  }
  throw std::invalid_argument("unknown transport '" + name +
                              "' (registered: " + registered_transport_names() +
                              ")");
}

}  // namespace ccml
