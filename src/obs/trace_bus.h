// The central observability bus.
//
// Producers (Network, congestion-control policies, TrainingJob, the fault
// injector, the scenario/experiment harnesses) publish typed TraceEvents to
// one TraceBus; sinks subscribe and serialize or aggregate them.  The bus is
// deliberately dumb: a non-owning sink list, an inline fan-out loop, and a
// name->Counter/Gauge registry — all deterministic (registries are ordered
// maps, events are delivered in emission order), so traces are byte-stable
// across runs and across SweepRunner thread counts.
//
// Sink contract: besides receiving events, a sink *declares* what sampling
// it needs.  `sample_cadence()` > 0 asks for integrated per-link
// kLinkThroughput/kLinkQueue series at that period (produced by telemetry's
// TraceThroughputSampler, which the scenario layer attaches when any sink
// asks); `sampled_links()` names links to sample even while idle; and
// `quiescence_compatible()` states whether the sink's output is well-defined
// across idle fast-forward gaps (see NetObserver in net/network.h).  All
// built-in sinks are quiescence-compatible, so instrumented runs keep the
// kernel's idle fast-forward.
//
// Cost when unobserved: producers guard emission on Network::trace_bus()
// being non-null, so an un-instrumented run does no observability work at
// all (verified by bench/perf_engine; numbers in docs/observability.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_event.h"
#include "util/time.h"

namespace ccml {

class TraceBus;

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Receives every event published on the bus, in emission order.
  virtual void on_event(const TraceEvent& ev) = 0;

  /// Sampling period the sink wants for integrated link series
  /// (kLinkThroughput / kLinkQueue); zero = no sampling needed.
  virtual Duration sample_cadence() const { return Duration::zero(); }

  /// Links the sink wants sampled even while they carry no flows (e.g. a
  /// recorder watching a specific bottleneck).  Links in use are always
  /// sampled; this only forces idle ones into the series.
  virtual std::vector<LinkId> sampled_links() const { return {}; }

  /// True when the sink's output is identical whether idle stretches are
  /// stepped through or fast-forwarded (all built-in sinks are; see the
  /// NetObserver contract in net/network.h).
  virtual bool quiescence_compatible() const { return true; }

  /// Called when the sink is added to a bus (sinks that render job names or
  /// read counters keep the pointer).
  virtual void attached(TraceBus& bus) { (void)bus; }

  /// Finalizes output (writes trailing structure, flushes streams).  Called
  /// by TraceBus::flush() after the run.
  virtual void flush() {}
};

class TraceBus {
 public:
  TraceBus() = default;
  TraceBus(const TraceBus&) = delete;
  TraceBus& operator=(const TraceBus&) = delete;

  /// Subscribes `sink` (non-owning; must outlive the bus's use).
  void add_sink(TraceSink& sink);

  bool has_sinks() const { return !sinks_.empty(); }

  /// Fans `ev` out to every sink, in subscription order.
  void emit(const TraceEvent& ev) {
    for (TraceSink* s : sinks_) s->on_event(ev);
  }

  /// Finalizes every sink's output.  Call once after the run (the CLI and
  /// the scenario harnesses do).
  void flush() {
    for (TraceSink* s : sinks_) s->flush();
  }

  /// Minimum positive cadence any sink declared; zero when no sink samples.
  Duration sample_cadence() const;

  /// Sorted union of every sink's sampled_links().
  std::vector<LinkId> sampled_links() const;

  /// True when every sink tolerates idle fast-forward.
  bool sinks_quiescence_compatible() const;

  // --- Job-name registry (for human-readable sink output) ------------------

  void register_job(JobId id, std::string name);
  /// Registered display name, or nullptr when the job is unknown.
  const std::string* job_name(JobId id) const;

  // --- Counter / Gauge registry -------------------------------------------

  /// Returns the named counter, creating it on first use.  The reference is
  /// stable for the bus's lifetime — producers cache it.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }

  /// Human-readable dump of every non-zero counter and every gauge (the
  /// CLI's run-summary block).
  std::string metrics_summary() const;

 private:
  std::vector<TraceSink*> sinks_;
  std::unordered_map<std::int32_t, std::string> job_names_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
};

}  // namespace ccml
