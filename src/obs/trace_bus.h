// The central observability bus.
//
// Producers (Network, congestion-control policies, TrainingJob, the fault
// injector, the scenario/experiment harnesses) publish typed TraceEvents to
// one TraceBus; sinks subscribe and serialize or aggregate them.  The bus is
// deliberately dumb: a non-owning sink list, an inline fan-out loop, and a
// name->Counter/Gauge registry — all deterministic (registries are ordered
// maps, events are delivered in emission order), so traces are byte-stable
// across runs and across SweepRunner thread counts.
//
// Sink contract: besides receiving events, a sink *declares* what sampling
// it needs.  `sample_cadence()` > 0 asks for integrated per-link
// kLinkThroughput/kLinkQueue series at that period (produced by telemetry's
// TraceThroughputSampler, which the scenario layer attaches when any sink
// asks); `sampled_links()` names links to sample even while idle; and
// `quiescence_compatible()` states whether the sink's output is well-defined
// across idle fast-forward gaps (see NetObserver in net/network.h).  All
// built-in sinks are quiescence-compatible, so instrumented runs keep the
// kernel's idle fast-forward.
//
// Cost when unobserved: producers guard emission on Network::trace_bus()
// being non-null, so an un-instrumented run does no observability work at
// all (verified by bench/perf_engine; numbers in docs/observability.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_event.h"
#include "util/spsc_ring.h"
#include "util/time.h"

namespace ccml {

class TraceBus;

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Receives every event published on the bus, in emission order.
  virtual void on_event(const TraceEvent& ev) = 0;

  /// Sampling period the sink wants for integrated link series
  /// (kLinkThroughput / kLinkQueue); zero = no sampling needed.
  virtual Duration sample_cadence() const { return Duration::zero(); }

  /// Links the sink wants sampled even while they carry no flows (e.g. a
  /// recorder watching a specific bottleneck).  Links in use are always
  /// sampled; this only forces idle ones into the series.
  virtual std::vector<LinkId> sampled_links() const { return {}; }

  /// True when the sink's output is identical whether idle stretches are
  /// stepped through or fast-forwarded (all built-in sinks are; see the
  /// NetObserver contract in net/network.h).
  virtual bool quiescence_compatible() const { return true; }

  /// Called when the sink is added to a bus (sinks that render job names or
  /// read counters keep the pointer).
  virtual void attached(TraceBus& bus) { (void)bus; }

  /// Finalizes output (writes trailing structure, flushes streams).  Called
  /// by TraceBus::flush() after the run.
  virtual void flush() {}
};

/// How the async trace path reacts when the SPSC ring is full.
enum class TraceOverflowPolicy {
  /// Producer waits for the consumer to free a slot: lossless, keeps traces
  /// byte-identical to synchronous delivery, but the sim can stall on slow
  /// sink I/O.  The default, because determinism is this repo's contract.
  kBlock,
  /// Producer drops the event and counts it: the sim never stalls (the
  /// real-time-safe choice), at the cost of holes in the trace.  Drops are
  /// reported via the `trace.dropped_events` counter and a trailing
  /// kTraceDrops event.
  kDropNewest,
};

struct TraceAsyncOptions {
  /// Ring capacity in events (rounded up to a power of two).
  std::size_t capacity = 1 << 16;
  TraceOverflowPolicy overflow = TraceOverflowPolicy::kBlock;
};

class TraceBus {
 public:
  TraceBus() = default;
  TraceBus(const TraceBus&) = delete;
  TraceBus& operator=(const TraceBus&) = delete;
  ~TraceBus() { stop_async(); }

  /// Subscribes `sink` (non-owning; must outlive the bus's use).  Must not
  /// be called while the async consumer is running.
  void add_sink(TraceSink& sink);

  bool has_sinks() const { return !sinks_.empty(); }

  /// Fans `ev` out to every sink, in subscription order.  With the async
  /// path active the event is instead enqueued on the SPSC ring — one
  /// relaxed load and a release store on the steady path — and the consumer
  /// thread performs the identical fan-out in FIFO (= emission) order, so
  /// sink output stays byte-identical to synchronous delivery.
  void emit(const TraceEvent& ev) {
    if (ring_) [[unlikely]] {
      emit_async(ev);
      return;
    }
    for (TraceSink* s : sinks_) s->on_event(ev);
  }

  // --- Async (lock-free SPSC) delivery ------------------------------------

  /// Moves event delivery onto a consumer thread fed by a lock-free SPSC
  /// ring.  Call from the emitting thread before the run; only that one
  /// thread may emit until stop_async().  No-op if already started.
  void start_async(TraceAsyncOptions opts = {});

  /// Drains the ring completely, joins the consumer thread, and — when the
  /// overflow policy dropped events — bumps `trace.dropped_events` and
  /// delivers one trailing kTraceDrops event (after everything drained, so
  /// ordering invariants hold).  Safe to call when async is not active.
  void stop_async();

  bool async_active() const { return ring_ != nullptr; }

  /// Producer-side barrier: returns once every event emitted so far has been
  /// fanned out to the sinks by the consumer thread.  Synchronous delivery
  /// makes this a no-op.  Used by the checkpoint layer, which must know the
  /// sinks' byte position at the snapshot instant; events dropped by the
  /// kDropNewest policy never reach the sinks and are not waited for (the
  /// checkpoint layer refuses drop mode outright for exactly that reason).
  void sync() {
    if (!ring_) return;
    while (consumed_.load(std::memory_order_acquire) < produced_) {
      std::this_thread::yield();
    }
  }

  /// Events discarded by TraceOverflowPolicy::kDropNewest so far.
  std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Finalizes every sink's output.  Call once after the run (the CLI and
  /// the scenario harnesses do).  Stops the async path first so every
  /// enqueued event reaches the sinks before their flush().
  void flush() {
    stop_async();
    for (TraceSink* s : sinks_) s->flush();
  }

  /// Minimum positive cadence any sink declared; zero when no sink samples.
  Duration sample_cadence() const;

  /// Sorted union of every sink's sampled_links().
  std::vector<LinkId> sampled_links() const;

  /// True when every sink tolerates idle fast-forward.
  bool sinks_quiescence_compatible() const;

  // --- Job-name registry (for human-readable sink output) ------------------
  // Mutex-guarded: the orchestrator registers jobs mid-run on the emitting
  // thread while sinks resolve names on the async consumer thread.  The
  // lock is uncontended per-event and entirely off the simulation hot path
  // (producers never call job_name).

  void register_job(JobId id, std::string name);
  /// Registered display name, or nullptr when the job is unknown.  The
  /// pointer stays valid for the bus's lifetime (names are never removed).
  const std::string* job_name(JobId id) const;

  // --- Counter / Gauge registry -------------------------------------------

  /// Returns the named counter, creating it on first use.  The reference is
  /// stable for the bus's lifetime — producers cache it.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }

  /// Human-readable dump of every non-zero counter and every gauge (the
  /// CLI's run-summary block).
  std::string metrics_summary() const;

 private:
  /// Out of line so emit() inlines to a null check plus the direct fan-out.
  void emit_async(const TraceEvent& ev);
  void consume_loop();

  std::vector<TraceSink*> sinks_;
  mutable std::mutex job_names_mu_;
  std::unordered_map<std::int32_t, std::string> job_names_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;

  // Async path state.  `ring_` doubles as the "async active" flag; the
  // producer-side members (overflow_, last_emit_time_, dropped_) are only
  // written by the emitting thread.
  std::unique_ptr<SpscRing<TraceEvent>> ring_;
  std::thread consumer_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<std::uint64_t> dropped_{0};
  /// Events successfully enqueued (producer-owned) vs. fanned out by the
  /// consumer; sync() spins on their difference.
  std::uint64_t produced_ = 0;
  std::atomic<std::uint64_t> consumed_{0};
  TraceOverflowPolicy overflow_ = TraceOverflowPolicy::kBlock;
  TimePoint last_emit_time_;
};

}  // namespace ccml
