#include "obs/trace_bus.h"

#include <algorithm>
#include <cstdio>

namespace ccml {

void TraceBus::add_sink(TraceSink& sink) {
  sinks_.push_back(&sink);
  sink.attached(*this);
}

void TraceBus::start_async(TraceAsyncOptions opts) {
  if (ring_) return;
  overflow_ = opts.overflow;
  stop_flag_.store(false, std::memory_order_relaxed);
  produced_ = 0;
  consumed_.store(0, std::memory_order_relaxed);
  ring_ = std::make_unique<SpscRing<TraceEvent>>(opts.capacity);
  consumer_ = std::thread([this] { consume_loop(); });
}

void TraceBus::stop_async() {
  if (!ring_) return;
  // The caller is the producer, so every emitted event is already in the
  // ring when the flag is raised: the consumer's final drain is complete by
  // construction.
  stop_flag_.store(true, std::memory_order_release);
  consumer_.join();
  ring_.reset();
  const std::uint64_t dropped = dropped_.load(std::memory_order_relaxed);
  if (dropped > 0) {
    counter("trace.dropped_events").add(static_cast<std::int64_t>(dropped));
    dropped_.store(0, std::memory_order_relaxed);
    // Delivered synchronously after the drain, so it is always the last
    // event in every sink's stream — the ordering invariant
    // tools/check_trace.py enforces.
    TraceEvent ev;
    ev.time = last_emit_time_;
    ev.kind = TraceEventKind::kTraceDrops;
    ev.value = static_cast<double>(dropped);
    for (TraceSink* s : sinks_) s->on_event(ev);
  }
}

void TraceBus::emit_async(const TraceEvent& ev) {
  last_emit_time_ = ev.time;
  if (ring_->try_push(ev)) {
    ++produced_;
    return;
  }
  if (overflow_ == TraceOverflowPolicy::kBlock) {
    // Lossless mode: wait for the consumer to free a slot.  Bounded by sink
    // throughput, and the consumer never blocks on the producer, so this
    // cannot deadlock.
    do {
      std::this_thread::yield();
    } while (!ring_->try_push(ev));
    ++produced_;
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceBus::consume_loop() {
  TraceEvent ev;
  while (true) {
    if (ring_->try_pop(ev)) {
      for (TraceSink* s : sinks_) s->on_event(ev);
      consumed_.fetch_add(1, std::memory_order_release);
      continue;
    }
    if (stop_flag_.load(std::memory_order_acquire)) {
      while (ring_->try_pop(ev)) {
        for (TraceSink* s : sinks_) s->on_event(ev);
        consumed_.fetch_add(1, std::memory_order_release);
      }
      return;
    }
    std::this_thread::yield();
  }
}

Duration TraceBus::sample_cadence() const {
  Duration min = Duration::zero();
  for (const TraceSink* s : sinks_) {
    const Duration c = s->sample_cadence();
    if (!c.is_positive()) continue;
    if (!min.is_positive() || c < min) min = c;
  }
  return min;
}

std::vector<LinkId> TraceBus::sampled_links() const {
  std::vector<LinkId> out;
  for (const TraceSink* s : sinks_) {
    const std::vector<LinkId> links = s->sampled_links();
    out.insert(out.end(), links.begin(), links.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool TraceBus::sinks_quiescence_compatible() const {
  for (const TraceSink* s : sinks_) {
    if (!s->quiescence_compatible()) return false;
  }
  return true;
}

void TraceBus::register_job(JobId id, std::string name) {
  const std::lock_guard<std::mutex> lock(job_names_mu_);
  job_names_[id.value] = std::move(name);
}

const std::string* TraceBus::job_name(JobId id) const {
  const std::lock_guard<std::mutex> lock(job_names_mu_);
  const auto it = job_names_.find(id.value);
  return it == job_names_.end() ? nullptr : &it->second;
}

std::string TraceBus::metrics_summary() const {
  std::string out = "run metrics:\n";
  char line[160];
  bool any = false;
  for (const auto& [name, c] : counters_) {
    if (c.value() == 0) continue;
    std::snprintf(line, sizeof(line), "  %-36s %12lld\n", name.c_str(),
                  static_cast<long long>(c.value()));
    out += line;
    any = true;
  }
  for (const auto& [name, g] : gauges_) {
    if (!g.ever_set()) continue;
    std::snprintf(line, sizeof(line), "  %-36s %12.1f  (peak %.1f)\n",
                  name.c_str(), g.value(), g.max());
    out += line;
    any = true;
  }
  if (!any) out += "  (none)\n";
  return out;
}

}  // namespace ccml
