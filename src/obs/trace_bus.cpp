#include "obs/trace_bus.h"

#include <algorithm>
#include <cstdio>

namespace ccml {

void TraceBus::add_sink(TraceSink& sink) {
  sinks_.push_back(&sink);
  sink.attached(*this);
}

Duration TraceBus::sample_cadence() const {
  Duration min = Duration::zero();
  for (const TraceSink* s : sinks_) {
    const Duration c = s->sample_cadence();
    if (!c.is_positive()) continue;
    if (!min.is_positive() || c < min) min = c;
  }
  return min;
}

std::vector<LinkId> TraceBus::sampled_links() const {
  std::vector<LinkId> out;
  for (const TraceSink* s : sinks_) {
    const std::vector<LinkId> links = s->sampled_links();
    out.insert(out.end(), links.begin(), links.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool TraceBus::sinks_quiescence_compatible() const {
  for (const TraceSink* s : sinks_) {
    if (!s->quiescence_compatible()) return false;
  }
  return true;
}

void TraceBus::register_job(JobId id, std::string name) {
  job_names_[id.value] = std::move(name);
}

const std::string* TraceBus::job_name(JobId id) const {
  const auto it = job_names_.find(id.value);
  return it == job_names_.end() ? nullptr : &it->second;
}

std::string TraceBus::metrics_summary() const {
  std::string out = "run metrics:\n";
  char line[160];
  bool any = false;
  for (const auto& [name, c] : counters_) {
    if (c.value() == 0) continue;
    std::snprintf(line, sizeof(line), "  %-36s %12lld\n", name.c_str(),
                  static_cast<long long>(c.value()));
    out += line;
    any = true;
  }
  for (const auto& [name, g] : gauges_) {
    if (!g.ever_set()) continue;
    std::snprintf(line, sizeof(line), "  %-36s %12.1f  (peak %.1f)\n",
                  name.c_str(), g.value(), g.max());
    out += line;
    any = true;
  }
  if (!any) out += "  (none)\n";
  return out;
}

}  // namespace ccml
