// Built-in TraceBus sinks.
//
//  * RingBufferSink    — keeps the most recent N events in memory; the cheap
//                        always-on option (post-mortem inspection, tests).
//  * JsonlSink         — one JSON object per line, append-only; the
//                        machine-diffable format (byte-identical for
//                        identical scenario + seed; see obs_trace tests).
//  * ChromeTraceSink   — Chrome trace_event JSON; open the file directly in
//                        Perfetto (https://ui.perfetto.dev) or
//                        chrome://tracing.  Jobs become threads of a "sim"
//                        process (phase slices, iteration/CNP instants, async
//                        per-flow lifecycle arrows), sampled link series
//                        become counter tracks of a "links" process, and
//                        faults/solver runs land in a "control" process.
//
// All three are quiescence-compatible: they only record what producers emit,
// so a fast-forwarded idle gap (during which nothing happens by definition)
// changes nothing.  JsonlSink and ChromeTraceSink accept a sample cadence to
// request integrated link throughput/queue series.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "obs/trace_bus.h"

namespace ccml {

/// Fixed-capacity ring of the latest events.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void on_event(const TraceEvent& ev) override;

  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const { return wrapped_ ? ring_.size() : head_; }
  /// Events discarded because the ring was full.
  std::size_t dropped() const { return dropped_; }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  bool wrapped_ = false;
  std::size_t dropped_ = 0;
};

struct JsonlSinkOptions {
  /// Request integrated link samples at this period (zero = events only).
  Duration sample_cadence = Duration::zero();
};

/// Newline-delimited JSON, one event per line, written as events arrive.
class JsonlSink : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& out, JsonlSinkOptions opts = {});

  void on_event(const TraceEvent& ev) override;
  Duration sample_cadence() const override { return opts_.sample_cadence; }
  void flush() override { out_.flush(); }

 private:
  std::ostream& out_;
  JsonlSinkOptions opts_;
};

struct ChromeTraceSinkOptions {
  /// Cadence of the link throughput/queue counter tracks; zero disables
  /// counters (events only).
  Duration sample_cadence = Duration::millis(5);
};

/// Chrome trace_event JSON (the "JSON Array Format" with metadata).  Events
/// are buffered and written on flush(), which also closes any still-open
/// phase slices at the last seen timestamp.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& out, ChromeTraceSinkOptions opts = {});

  void attached(TraceBus& bus) override { bus_ = &bus; }
  void on_event(const TraceEvent& ev) override;
  Duration sample_cadence() const override { return opts_.sample_cadence; }
  void flush() override;

 private:
  std::string job_label(JobId job) const;
  std::string series_label(const TraceEvent& ev) const;

  std::ostream& out_;
  ChromeTraceSinkOptions opts_;
  TraceBus* bus_ = nullptr;
  std::vector<std::string> events_;
  std::map<std::int32_t, const char*> open_phase_;  // job -> open slice name
  std::set<std::int32_t> job_tracks_;
  double last_ts_ = 0.0;
  bool flushed_ = false;
};

}  // namespace ccml
