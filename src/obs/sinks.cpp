#include "obs/sinks.h"

#include <cstdio>
#include <string_view>

namespace ccml {

namespace {

// Chrome trace process ids: one "process" per layer keeps Perfetto's track
// tree tidy.
constexpr int kSimPid = 1;    // job threads: phases, iterations, flows, CC
constexpr int kLinksPid = 2;  // counter tracks: sampled link series
constexpr int kCtrlPid = 3;   // control plane: faults, solver runs

// Thread id for events carrying no job attribution (background traffic).
constexpr int kUnattributedTid = 999;

int track_of(JobId job) { return job.valid() ? job.value : kUnattributedTid; }

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
  return out;
}

}  // namespace

// --- RingBufferSink --------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

void RingBufferSink::on_event(const TraceEvent& ev) {
  if (wrapped_) ++dropped_;
  ring_[head_] = ev;
  if (++head_ == ring_.size()) {
    head_ = 0;
    wrapped_ = true;
  }
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + head_, ring_.end());
  }
  out.insert(out.end(), ring_.begin(), ring_.begin() + head_);
  return out;
}

// --- JsonlSink -------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& out, JsonlSinkOptions opts)
    : out_(out), opts_(opts) {}

void JsonlSink::on_event(const TraceEvent& ev) {
  char buf[320];
  int n = std::snprintf(buf, sizeof(buf), "{\"t_us\":%.3f,\"kind\":\"%s\"",
                        ev.time.since_origin().to_micros(),
                        to_string(ev.kind));
  const auto add = [&](const char* fmt, auto v) {
    n += std::snprintf(buf + n, sizeof(buf) - n, fmt, v);
  };
  if (ev.job.valid()) add(",\"job\":%d", ev.job.value);
  if (ev.flow.valid()) {
    add(",\"flow\":%lld", static_cast<long long>(ev.flow.value));
  }
  if (ev.link.valid()) add(",\"link\":%d", ev.link.value);
  // The full contended-link set, only when it says more than "link" alone
  // (a single-bottleneck route serializes exactly as before).
  if (ev.link_count > 1) {
    add(",\"links\":[%d", ev.links[0].value);
    for (int i = 1; i < ev.link_count; ++i) add(",%d", ev.links[i].value);
    n += std::snprintf(buf + n, sizeof(buf) - n, "]");
  }
  if (ev.value != 0.0) add(",\"value\":%.17g", ev.value);
  if (ev.value2 != 0.0) add(",\"value2\":%.17g", ev.value2);
  if (ev.detail != nullptr) add(",\"detail\":\"%s\"", ev.detail);
  out_ << buf << "}\n";
}

// --- ChromeTraceSink -------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream& out,
                                 ChromeTraceSinkOptions opts)
    : out_(out), opts_(opts) {}

std::string ChromeTraceSink::job_label(JobId job) const {
  if (bus_ != nullptr) {
    if (const std::string* name = bus_->job_name(job)) {
      return escape_json(*name);
    }
  }
  return job.valid() ? "job " + std::to_string(job.value) : "background";
}

std::string ChromeTraceSink::series_label(const TraceEvent& ev) const {
  return ev.job.valid() ? job_label(ev.job) : std::string("total");
}

void ChromeTraceSink::on_event(const TraceEvent& ev) {
  const double ts = ev.time.since_origin().to_micros();
  if (ts > last_ts_) last_ts_ = ts;
  char buf[320];
  const int tid = track_of(ev.job);
  const auto add = [&] { events_.emplace_back(buf); };
  switch (ev.kind) {
    case TraceEventKind::kPhase: {
      job_tracks_.insert(tid);
      const auto open = open_phase_.find(tid);
      if (open != open_phase_.end() && open->second != nullptr) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":%d,\"tid\":%d,"
                      "\"ts\":%.3f}",
                      open->second, kSimPid, tid, ts);
        add();
      }
      const char* name = ev.detail != nullptr ? ev.detail : "phase";
      if (ev.detail != nullptr && std::string_view(ev.detail) != "done") {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":%d,\"tid\":%d,"
                      "\"ts\":%.3f}",
                      name, kSimPid, tid, ts);
        add();
        open_phase_[tid] = name;
      } else {
        open_phase_[tid] = nullptr;
      }
      break;
    }
    case TraceEventKind::kIteration:
      job_tracks_.insert(tid);
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"iteration\",\"ph\":\"i\",\"s\":\"t\","
                    "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"args\":{\"ms\":%.3f,\"index\":%.0f}}",
                    kSimPid, tid, ts, ev.value, ev.value2);
      add();
      break;
    case TraceEventKind::kGateOpen:
      job_tracks_.insert(tid);
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"gate-open\",\"ph\":\"i\",\"s\":\"t\","
                    "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"args\":{\"waited_ms\":%.3f}}",
                    kSimPid, tid, ts, ev.value);
      add();
      break;
    case TraceEventKind::kFlowStart:
      job_tracks_.insert(tid);
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"b\","
                    "\"id\":%lld,\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"args\":{\"bytes\":%.0f}}",
                    static_cast<long long>(ev.flow.value), kSimPid, tid, ts,
                    ev.value);
      add();
      break;
    case TraceEventKind::kFlowFinish:
    case TraceEventKind::kFlowAbort:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"e\","
                    "\"id\":%lld,\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"args\":{\"%s\":%.3f}}",
                    static_cast<long long>(ev.flow.value), kSimPid, tid, ts,
                    ev.kind == TraceEventKind::kFlowAbort ? "aborted"
                                                          : "duration_ms",
                    ev.kind == TraceEventKind::kFlowAbort ? 1.0 : ev.value2);
      add();
      break;
    case TraceEventKind::kFlowReroute:
    case TraceEventKind::kFlowPark:
    case TraceEventKind::kFlowUnpark:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"n\","
                    "\"id\":%lld,\"pid\":%d,\"tid\":%d,\"ts\":%.3f}",
                    to_string(ev.kind),
                    static_cast<long long>(ev.flow.value), kSimPid, tid, ts);
      add();
      break;
    case TraceEventKind::kRateDecrease:
      job_tracks_.insert(tid);
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"CNP\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
                    "\"tid\":%d,\"ts\":%.3f,"
                    "\"args\":{\"rate_gbps\":%.3f,\"alpha\":%.4f}}",
                    kSimPid, tid, ts, ev.value * 1e-9, ev.value2);
      add();
      break;
    case TraceEventKind::kRateTimer:
      job_tracks_.insert(tid);
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"rate-timer\",\"ph\":\"i\",\"s\":\"t\","
                    "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"args\":{\"rate_gbps\":%.3f}}",
                    kSimPid, tid, ts, ev.value * 1e-9);
      add();
      break;
    case TraceEventKind::kLinkThroughput: {
      const std::string series = series_label(ev);
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"link%d %s (Gbps)\",\"ph\":\"C\",\"pid\":%d,"
                    "\"tid\":0,\"ts\":%.3f,\"args\":{\"Gbps\":%.4f}}",
                    ev.link.value, series.c_str(), kLinksPid, ts,
                    ev.value * 1e-9);
      add();
      break;
    }
    case TraceEventKind::kLinkQueue:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"link%d queue (KB)\",\"ph\":\"C\",\"pid\":%d,"
                    "\"tid\":0,\"ts\":%.3f,\"args\":{\"KB\":%.3f}}",
                    ev.link.value, kLinksPid, ts, ev.value * 1e-3);
      add();
      break;
    case TraceEventKind::kFaultApply:
    case TraceEventKind::kFaultRecover:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":%d,"
                    "\"tid\":0,\"ts\":%.3f,\"args\":{\"factor\":%.3f}}",
                    ev.detail != nullptr ? ev.detail : to_string(ev.kind),
                    kCtrlPid, ts, ev.value);
      add();
      break;
    case TraceEventKind::kSolve:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"solve\",\"ph\":\"i\",\"s\":\"g\",\"pid\":%d,"
                    "\"tid\":0,\"ts\":%.3f,"
                    "\"args\":{\"compatible\":%.0f,\"violation\":%.4f}}",
                    kCtrlPid, ts, ev.value, ev.value2);
      add();
      break;
    case TraceEventKind::kTraceDrops:
      // Self-reported observability loss (async ring overflow); global
      // instant in the control process so trace holes are visible.
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"trace-drops\",\"ph\":\"i\",\"s\":\"g\","
                    "\"pid\":%d,\"tid\":0,\"ts\":%.3f,"
                    "\"args\":{\"dropped\":%.0f}}",
                    kCtrlPid, ts, ev.value);
      add();
      break;
    case TraceEventKind::kSoloBaseline:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"solo-baseline\",\"ph\":\"i\",\"s\":\"g\","
                    "\"pid\":%d,\"tid\":0,\"ts\":%.3f,"
                    "\"args\":{\"job\":%d,\"solo_ms\":%.6g}}",
                    kCtrlPid, ts, ev.job.value, ev.value);
      add();
      break;
    case TraceEventKind::kAnomalyPhaseDrift:
    case TraceEventKind::kAnomalyQueueOscillation:
    case TraceEventKind::kAnomalyStarvation:
    case TraceEventKind::kAnomalyCongestionCollapse:
      // Analytics-derived anomalies: global instants in the control process
      // so degradations line up against faults and solver runs.
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":%d,"
                    "\"tid\":0,\"ts\":%.3f,"
                    "\"args\":{\"value\":%.6g,\"value2\":%.6g}}",
                    to_string(ev.kind), kCtrlPid, ts, ev.value, ev.value2);
      add();
      break;
    case TraceEventKind::kHistogramSummary:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"histogram-summary\",\"ph\":\"i\",\"s\":\"g\","
                    "\"pid\":%d,\"tid\":0,\"ts\":%.3f,"
                    "\"args\":{\"p99\":%.6g,\"count\":%.0f}}",
                    kCtrlPid, ts, ev.value, ev.value2);
      add();
      break;
    case TraceEventKind::kJobSubmit:
    case TraceEventKind::kJobAdmit:
    case TraceEventKind::kJobReject:
    case TraceEventKind::kJobDepart:
      // Orchestrator lifecycle marks live in the control process so churn is
      // visible next to faults and solver runs.
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":%d,"
                    "\"tid\":0,\"ts\":%.3f,"
                    "\"args\":{\"job\":%d,\"value\":%.3f}}",
                    to_string(ev.kind), kCtrlPid, ts, ev.job.value, ev.value);
      add();
      break;
  }
}

void ChromeTraceSink::flush() {
  if (flushed_) return;
  flushed_ = true;
  // Close phase slices still open at the end of the run.
  char buf[320];
  for (const auto& [tid, name] : open_phase_) {
    if (name == nullptr) continue;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":%.3f}",
                  name, kSimPid, tid, last_ts_);
    events_.emplace_back(buf);
  }
  out_ << "{\"traceEvents\":[\n";
  // Metadata first: process / thread display names.
  out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSimPid
       << ",\"tid\":0,\"args\":{\"name\":\"sim\"}},\n";
  out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kLinksPid
       << ",\"tid\":0,\"args\":{\"name\":\"links\"}},\n";
  out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kCtrlPid
       << ",\"tid\":0,\"args\":{\"name\":\"control\"}}";
  for (const int tid : job_tracks_) {
    const JobId job{tid == kUnattributedTid ? -1 : tid};
    out_ << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kSimPid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << job_label(job) << "\"}}";
  }
  for (const std::string& ev : events_) {
    out_ << ",\n" << ev;
  }
  out_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
  out_.flush();
}

}  // namespace ccml
