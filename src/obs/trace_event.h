// The typed trace-event vocabulary shared by every layer of the simulator.
//
// A TraceEvent is one timestamped "something happened" record: a flow
// lifecycle edge (net), a DCQCN rate-machine action (cc), a job phase
// transition or iteration boundary (workload), a fault firing (faults), or a
// solver run (cluster).  Producers fill only the id fields that apply and
// leave the rest at their invalid defaults; `value`/`value2` carry the two
// kind-specific numeric payloads documented below, and `detail` — when set —
// points at a *static* string (phase names, fault kinds), so events are
// trivially copyable and never own memory.
//
// Events flow through a TraceBus (obs/trace_bus.h) to pluggable sinks; see
// docs/observability.md for the full taxonomy and the serialized formats.
#pragma once

#include <cstdint>

#include "net/types.h"
#include "util/time.h"

namespace ccml {

enum class TraceEventKind : std::uint8_t {
  // Flow lifecycle (src/net).  value = flow size in bytes; kFlowFinish also
  // sets value2 = flow duration in ms.
  kFlowStart,
  kFlowFinish,
  kFlowAbort,
  kFlowReroute,  ///< flow moved to a surviving path (value/value2 unused)
  kFlowPark,     ///< no usable path; flow parked until repair
  kFlowUnpark,   ///< parked flow requeued after the route healed

  // DCQCN rate machine (src/cc).  value = new current rate R_C in bits/s.
  kRateDecrease,  ///< CNP processed; value2 = alpha after the decrease
  kRateTimer,     ///< timer-driven increase fired; value2 = timer rounds

  // Training-job state machine (src/workload).
  kPhase,      ///< phase entered; detail = "compute"|"gate-wait"|"comm"|...
  kIteration,  ///< iteration finished; value = duration ms, value2 = index
  kGateOpen,   ///< comm gate admitted the job; value = ms spent waiting

  // Fault injection (src/faults).  detail = to_string(FaultKind),
  // value = capacity/straggler factor for link/straggler events.
  kFaultApply,
  kFaultRecover,  ///< a restoring event (link-up, straggler-off, resume)

  // Compatibility solver (src/cluster, src/orch).  value = 1 when
  // compatible, value2 = violation fraction.  Re-solves answered from the
  // orchestrator's signature cache set detail = "cached".
  kSolve,

  // Online orchestrator (src/orch).
  kJobSubmit,  ///< job offered to the cluster; value = worker count
  kJobAdmit,   ///< admission granted; value = queueing delay ms
  kJobReject,  ///< admission refused for good (queue full / timed out)
  kJobDepart,  ///< admitted job left (service complete); value = held ms

  // Sampled link series (telemetry's TraceThroughputSampler).
  kLinkThroughput,  ///< value = bits/s; job unset = link total, set = share
  kLinkQueue,       ///< value = queue depth in bytes

  // Observability self-reporting (src/obs).  Emitted by TraceBus when the
  // async SPSC path dropped events (overflow policy kDropNewest); value =
  // events dropped since the previous report.  Always delivered in-stream
  // after the drained events it accounts for.
  kTraceDrops,

  // Run metadata for the streaming analytics (src/obs/analytics).  Emitted
  // by harnesses that know each job's dedicated-network iteration time
  // (scenario / orchestrator), so a serialized trace is self-contained: the
  // offline `ccml_sim analyze` replay reproduces slowdown-vs-dedicated
  // without access to the job profiles.
  kSoloBaseline,  ///< value = dedicated-run iteration ms for `job`

  // Streaming analytics (src/obs/analytics).  Derived events folded back
  // into the stream by the AnalyticsEngine, deterministically ordered right
  // after the raw event that triggered them.  Anomalies carry the measured
  // quantity in value and its reference in value2; the AnalyticsEngine
  // ignores these kinds on input so replaying an annotated trace re-derives
  // (rather than double-counts) them.
  kAnomalyPhaseDrift,         ///< value = windowed overlap fraction,
                              ///  value2 = overlap at arming (baseline)
  kAnomalyQueueOscillation,   ///< value = swings in window, value2 = max
                              ///  swing amplitude (bytes)
  kAnomalyStarvation,         ///< value = ms since the job's last iteration,
                              ///  value2 = its median iteration ms
  kAnomalyCongestionCollapse, ///< value = windowed goodput (bits/s),
                              ///  value2 = established peak (bits/s)
  kHistogramSummary,          ///< flush-time digest; detail =
                              ///  "iteration_ms" | "queue_bytes",
                              ///  value = p99, value2 = sample count

  // Checkpoint/restore (src/ckpt).  In-stream records of the snapshot
  // machinery itself, so a resumed trace documents where it was cut and a
  // branched trace documents where the what-if diverged.
  kCkptWrite,   ///< snapshot written; value = sequence number,
                ///  value2 = serialized size in bytes
  kCkptBranch,  ///< what-if continuation forked here; value = branch index,
                ///  detail = the varied dimension ("admission"|"transport"|
                ///  "faults"|"baseline")

  // CC-policy subsystem (src/cc/policy).  Transports that decide through an
  // explicit observation -> action step report it here; the native DCQCN /
  // TIMELY machines keep their dedicated kRateDecrease / kRateTimer kinds.
  kCcDecision,  ///< table-driven action applied; value = new rate in bits/s,
                ///  value2 = matched rule index (-1 = default action)
  kCcPhase,     ///< rate-machine phase change (BBR-lite state machine);
                ///  value = new phase index, detail = its static name
};

/// Stable lower-kebab-case name of the kind (serialized into JSONL traces).
const char* to_string(TraceEventKind kind);

/// Reverse of to_string(); false when `name` is not a known kind.  Used by
/// the offline trace reader (src/obs/analytics/trace_reader.h).
bool trace_event_kind_from_string(const char* name, TraceEventKind& out);

/// Inline capacity for a flow event's contended-link set.  Leaf-spine routes
/// here are at most 4 hops (host up, leaf up, spine down, host down); 6
/// leaves headroom without growing the event past a cache line pair.  A
/// fixed array (not a vector) keeps TraceEvent trivially copyable — the
/// async SPSC ring copies events by value.
inline constexpr int kTraceMaxContendedLinks = 6;

struct TraceEvent {
  TimePoint time;
  TraceEventKind kind = TraceEventKind::kFlowStart;
  JobId job;
  FlowId flow;
  /// Primary attribution: the route's limiting link (earliest tied link on
  /// the route, Network::route_bottleneck).
  LinkId link;
  /// Full contended-link set for flow lifecycle events: every route link
  /// tied at the minimum nominal capacity, in route order (truncated at the
  /// inline capacity).  links[0] == link whenever count > 0; count stays 0
  /// for non-flow events and for traces that predate multi-bottleneck
  /// attribution.
  std::uint8_t link_count = 0;
  LinkId links[kTraceMaxContendedLinks];
  double value = 0.0;
  double value2 = 0.0;
  /// Kind-specific tag; must point at a string with static storage duration.
  const char* detail = nullptr;
};

}  // namespace ccml
