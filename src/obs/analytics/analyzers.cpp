#include "obs/analytics/analyzers.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace ccml {

namespace {

TraceEvent anomaly(TraceEventKind kind, TimePoint t, double value,
                   double value2) {
  TraceEvent ev;
  ev.time = t;
  ev.kind = kind;
  ev.value = value;
  ev.value2 = value2;
  return ev;
}

/// The event's contended-link set: `links[0..link_count)` when present,
/// falling back to the single primary `link` (legacy traces, and replayed
/// events whose route had one bottleneck).  Returns the count written.
int contended_links(const TraceEvent& ev,
                    std::int32_t (&out)[kTraceMaxContendedLinks]) {
  if (ev.link_count > 0) {
    const int n = std::min<int>(ev.link_count, kTraceMaxContendedLinks);
    for (int i = 0; i < n; ++i) out[i] = ev.links[i].value;
    return n;
  }
  if (!ev.link.valid()) return 0;
  out[0] = ev.link.value;
  return 1;
}

}  // namespace

// --- IterationAnalyzer ------------------------------------------------------

double IterationAnalyzer::median_ms(const JobState& job) const {
  if (job.sorted_ms.empty()) return 0.0;
  // Lower median: deterministic and monotone under insertion.
  return job.sorted_ms[(job.sorted_ms.size() - 1) / 2];
}

void IterationAnalyzer::on_event(const TraceEvent& ev,
                                 std::vector<TraceEvent>& derived) {
  // Starvation sweep first: any event advances the clock, and a starving
  // job by definition produces no events of its own.
  for (auto& [id, js] : jobs_) {
    if (!js.active || js.starving || !js.saw_iteration) continue;
    if (static_cast<int>(js.sorted_ms.size()) <
        config_->starvation_min_iterations) {
      continue;
    }
    const double median = median_ms(js);
    const double gap_ms = (ev.time - js.last_iteration).to_millis();
    if (median > 0.0 && gap_ms > config_->starvation_factor * median) {
      js.starving = true;
      ++starvation_events_;
      TraceEvent out = anomaly(TraceEventKind::kAnomalyStarvation, ev.time,
                               gap_ms, median);
      out.job = JobId{id};
      derived.push_back(out);
    }
  }

  switch (ev.kind) {
    case TraceEventKind::kIteration: {
      if (!ev.job.valid()) break;
      JobState& js = jobs_[ev.job.value];
      if (js.hist.count() == 0) js.hist = HdrHistogram(config_->histogram);
      js.hist.record(ev.value);
      js.sum_ms += ev.value;
      if (!js.saw_iteration || ev.value < js.min_ms) js.min_ms = ev.value;
      js.last_iteration = ev.time;
      js.saw_iteration = true;
      js.starving = false;  // an iteration ends any starvation episode
      js.active = true;
      js.sorted_ms.insert(
          std::lower_bound(js.sorted_ms.begin(), js.sorted_ms.end(), ev.value),
          ev.value);
      break;
    }
    case TraceEventKind::kPhase:
      if (ev.job.valid() && ev.detail != nullptr &&
          std::strcmp(ev.detail, "done") == 0) {
        jobs_[ev.job.value].active = false;
      }
      break;
    case TraceEventKind::kJobAdmit:
      if (ev.job.valid()) jobs_[ev.job.value].active = true;
      break;
    case TraceEventKind::kJobDepart:
      if (ev.job.valid()) jobs_[ev.job.value].active = false;
      break;
    default:
      break;
  }
}

// --- InterleavingAnalyzer ---------------------------------------------------

double InterleavingAnalyzer::Overlap::score() const {
  if (busy_ns <= 0) return 1.0;
  return 1.0 - static_cast<double>(overlap_ns) / static_cast<double>(busy_ns);
}

void InterleavingAnalyzer::close_drift_window(
    TimePoint at, std::vector<TraceEvent>& derived) {
  const bool have_comm = win_busy_ns_ > 0;
  const double frac =
      have_comm ? static_cast<double>(win_overlap_ns_) /
                      static_cast<double>(win_busy_ns_)
                : 0.0;
  switch (drift_) {
    case DriftState::kUnarmed:
    case DriftState::kFired:
      if (have_comm && frac <= config_->drift_arm_threshold) {
        drift_ = DriftState::kArmed;
        armed_fraction_ = frac;
      }
      break;
    case DriftState::kArmed:
      if (have_comm && frac >= config_->drift_fire_threshold) {
        derived.push_back(anomaly(TraceEventKind::kAnomalyPhaseDrift, at,
                                  frac, armed_fraction_));
        ++drift_events_;
        drift_ = DriftState::kFired;
      }
      break;
  }
  win_busy_ns_ = 0;
  win_overlap_ns_ = 0;
}

void InterleavingAnalyzer::advance_global(TimePoint t,
                                          std::vector<TraceEvent>& derived) {
  if (!started_) {
    started_ = true;
    first_ = t;
    last_ = t;
    window_end_ = t + config_->drift_window;
    return;
  }
  if (t < last_) t = last_;  // defensive: never integrate backwards
  const auto integrate_to = [&](TimePoint upto) {
    const std::int64_t dt = (upto - last_).ns();
    if (dt > 0) {
      if (comm_jobs_ >= 1) {
        global_.busy_ns += dt;
        win_busy_ns_ += dt;
      }
      if (comm_jobs_ >= 2) {
        global_.overlap_ns += dt;
        win_overlap_ns_ += dt;
      }
      last_ = upto;
    }
  };
  while (t >= window_end_) {
    integrate_to(window_end_);
    last_ = window_end_;  // advance even across empty windows
    close_drift_window(window_end_, derived);
    window_end_ += config_->drift_window;
  }
  integrate_to(t);
  last_ = t;
}

void InterleavingAnalyzer::link_integrate(LinkState& ls, TimePoint t) {
  if (!ls.started) {
    ls.started = true;
    ls.last = t;
    return;
  }
  const std::int64_t dt = (t - ls.last).ns();
  if (dt > 0) {
    if (ls.jobs_active >= 1) ls.overlap.busy_ns += dt;
    if (ls.jobs_active >= 2) ls.overlap.overlap_ns += dt;
  }
  ls.last = t;
}

void InterleavingAnalyzer::link_flow_delta(std::int32_t link, std::int32_t job,
                                           int delta, TimePoint t) {
  LinkState& ls = links_[link];
  link_integrate(ls, t);
  int& cnt = ls.job_flows[job];
  const bool was_active = cnt > 0;
  cnt += delta;
  if (cnt <= 0) {
    ls.job_flows.erase(job);
    if (was_active) --ls.jobs_active;
  } else if (!was_active) {
    ++ls.jobs_active;
  }
}

void InterleavingAnalyzer::on_event(const TraceEvent& ev,
                                    std::vector<TraceEvent>& derived) {
  advance_global(ev.time, derived);

  switch (ev.kind) {
    case TraceEventKind::kPhase: {
      if (!ev.job.valid()) break;
      const bool comm =
          ev.detail != nullptr && std::strcmp(ev.detail, "comm") == 0;
      bool& cur = in_comm_[ev.job.value];
      if (cur != comm) {
        comm_jobs_ += comm ? 1 : -1;
        cur = comm;
      }
      break;
    }
    case TraceEventKind::kFlowStart: {
      if (!ev.link.valid() || !ev.job.valid()) break;
      FlowState& fs = flows_[ev.flow.value];
      fs.nlinks = static_cast<std::uint8_t>(contended_links(ev, fs.links));
      fs.job = ev.job.value;
      fs.active = true;
      for (int i = 0; i < fs.nlinks; ++i) {
        link_flow_delta(fs.links[i], fs.job, +1, ev.time);
      }
      break;
    }
    case TraceEventKind::kFlowFinish:
    case TraceEventKind::kFlowAbort: {
      const auto it = flows_.find(ev.flow.value);
      if (it == flows_.end()) break;
      if (it->second.active) {
        const FlowState& fs = it->second;
        for (int i = 0; i < fs.nlinks; ++i) {
          link_flow_delta(fs.links[i], fs.job, -1, ev.time);
        }
      }
      flows_.erase(it);
      break;
    }
    case TraceEventKind::kFlowPark: {
      const auto it = flows_.find(ev.flow.value);
      if (it == flows_.end() || !it->second.active) break;
      FlowState& fs = it->second;
      for (int i = 0; i < fs.nlinks; ++i) {
        link_flow_delta(fs.links[i], fs.job, -1, ev.time);
      }
      fs.active = false;
      break;
    }
    case TraceEventKind::kFlowUnpark: {
      const auto it = flows_.find(ev.flow.value);
      if (it == flows_.end() || it->second.active || !ev.link.valid()) break;
      FlowState& fs = it->second;
      // The healed (possibly rerouted) route's contended set.
      fs.nlinks = static_cast<std::uint8_t>(contended_links(ev, fs.links));
      fs.active = true;
      for (int i = 0; i < fs.nlinks; ++i) {
        link_flow_delta(fs.links[i], fs.job, +1, ev.time);
      }
      break;
    }
    case TraceEventKind::kFlowReroute: {
      const auto it = flows_.find(ev.flow.value);
      if (it == flows_.end() || !ev.link.valid()) break;
      FlowState& fs = it->second;
      std::int32_t next[kTraceMaxContendedLinks] = {};
      const int nnext = contended_links(ev, next);
      const bool same =
          nnext == fs.nlinks &&
          std::equal(next, next + nnext, fs.links);
      if (fs.active && !same) {
        for (int i = 0; i < fs.nlinks; ++i) {
          link_flow_delta(fs.links[i], fs.job, -1, ev.time);
        }
        for (int i = 0; i < nnext; ++i) {
          link_flow_delta(next[i], fs.job, +1, ev.time);
        }
      }
      std::copy(next, next + nnext, fs.links);
      fs.nlinks = static_cast<std::uint8_t>(nnext);
      break;
    }
    default:
      break;
  }
}

void InterleavingAnalyzer::finish(TimePoint end,
                                  std::vector<TraceEvent>& derived) {
  if (started_) advance_global(end, derived);
  for (auto& [id, ls] : links_) link_integrate(ls, end);
}

// --- FairnessAnalyzer -------------------------------------------------------

namespace {

double jain_index(const std::map<std::int32_t, double>& shares) {
  double sum = 0.0;
  double sum_sq = 0.0;
  int n = 0;
  for (const auto& [job, x] : shares) {
    if (x <= 0.0) continue;
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n < 2) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

int active_jobs(const std::map<std::int32_t, double>& shares) {
  int n = 0;
  for (const auto& [job, x] : shares) {
    if (x > 0.0) ++n;
  }
  return n;
}

}  // namespace

double FairnessAnalyzer::jain_overall() const { return jain_index(job_total_); }

void FairnessAnalyzer::close_window(TimePoint at,
                                    std::vector<TraceEvent>& derived) {
  if (active_jobs(job_window_) >= 2) {
    const double jain = jain_index(job_window_);
    ++windows_;
    if (jain < jain_min_) jain_min_ = jain;
  }
  job_window_.clear();

  for (auto& [id, ls] : links_) {
    if (ls.win_goodput_n == 0) continue;
    const double cur =
        ls.win_goodput_sum / static_cast<double>(ls.win_goodput_n);
    const double queue_mean =
        ls.win_queue_n != 0
            ? ls.win_queue_sum / static_cast<double>(ls.win_queue_n)
            : 0.0;
    const double floor = config_->collapse_ratio * ls.peak_window_bps;
    if (ls.peak_window_bps > 0.0 && cur < floor &&
        queue_mean >= config_->collapse_min_queue_bytes) {
      if (!ls.collapsed) {
        ls.collapsed = true;
        ++collapse_events_;
        TraceEvent out = anomaly(TraceEventKind::kAnomalyCongestionCollapse,
                                 at, cur, ls.peak_window_bps);
        out.link = LinkId{id};
        derived.push_back(out);
      }
    } else if (cur >= floor) {
      ls.collapsed = false;
    }
    if (cur > ls.peak_window_bps) ls.peak_window_bps = cur;
    ls.win_goodput_sum = 0.0;
    ls.win_goodput_n = 0;
    ls.win_queue_sum = 0.0;
    ls.win_queue_n = 0;
  }
}

void FairnessAnalyzer::on_event(const TraceEvent& ev,
                                std::vector<TraceEvent>& derived) {
  if (!started_) {
    started_ = true;
    window_end_ = ev.time + config_->fairness_window;
  }
  while (ev.time >= window_end_) {
    close_window(window_end_, derived);
    window_end_ += config_->fairness_window;
  }
  switch (ev.kind) {
    case TraceEventKind::kLinkThroughput:
      if (ev.job.valid()) {
        job_window_[ev.job.value] += ev.value;
        job_total_[ev.job.value] += ev.value;
      } else if (ev.link.valid()) {
        LinkState& ls = links_[ev.link.value];
        ls.goodput_sum_bps += ev.value;
        ++ls.goodput_samples;
        ls.win_goodput_sum += ev.value;
        ++ls.win_goodput_n;
      }
      break;
    case TraceEventKind::kLinkQueue:
      if (ev.link.valid()) {
        LinkState& ls = links_[ev.link.value];
        ls.win_queue_sum += ev.value;
        ++ls.win_queue_n;
      }
      break;
    default:
      break;
  }
}

void FairnessAnalyzer::finish(TimePoint end,
                              std::vector<TraceEvent>& derived) {
  if (!started_) return;
  // Close every full window the trace covers; a trailing partial window is
  // discarded (identically online and offline).
  while (end >= window_end_) {
    close_window(window_end_, derived);
    window_end_ += config_->fairness_window;
  }
}

// --- QueueAnalyzer ----------------------------------------------------------

void QueueAnalyzer::on_event(const TraceEvent& ev,
                             std::vector<TraceEvent>& derived) {
  if (ev.kind != TraceEventKind::kLinkQueue || !ev.link.valid()) return;
  LinkState& ls = links_[ev.link.value];
  if (ls.hist.count() == 0 && !ls.have_prev) {
    ls.hist = HdrHistogram(config_->histogram);
  }
  const double v = ev.value;
  ls.hist.record(v);
  if (v > ls.peak_bytes) ls.peak_bytes = v;

  if (!ls.have_prev) {
    ls.have_prev = true;
    ls.prev = v;
    ls.last_extreme = v;
    return;
  }
  const double d = v - ls.prev;
  const int dir = d > 0.0 ? 1 : (d < 0.0 ? -1 : 0);
  if (dir != 0) {
    if (ls.direction != 0 && dir != ls.direction) {
      // `prev` was a local extremum; measure the excursion since the last.
      const double amplitude = std::fabs(ls.prev - ls.last_extreme);
      const double threshold =
          std::max(config_->oscillation_min_amplitude_bytes,
                   config_->oscillation_amplitude_frac * ls.peak_bytes);
      if (amplitude >= threshold) {
        ls.swings_ns.push_back(ev.time.ns());
        const std::int64_t horizon =
            ev.time.ns() - config_->oscillation_window.ns();
        while (!ls.swings_ns.empty() && ls.swings_ns.front() < horizon) {
          ls.swings_ns.pop_front();
        }
        if (static_cast<int>(ls.swings_ns.size()) >=
            config_->oscillation_min_swings) {
          TraceEvent out =
              anomaly(TraceEventKind::kAnomalyQueueOscillation, ev.time,
                      static_cast<double>(ls.swings_ns.size()), amplitude);
          out.link = ev.link;
          derived.push_back(out);
          ++oscillation_events_;
          ls.swings_ns.clear();  // built-in cooldown: restart the count
        }
      }
      ls.last_extreme = ls.prev;
    }
    ls.direction = dir;
  }
  ls.prev = v;
}

}  // namespace ccml
