// Streaming analyzers: fold a TraceEvent stream into the paper-level
// quantities the run-health report is built from.
//
// Each analyzer consumes the kinds it cares about via `on_event`, appending
// any derived `anomaly.*` events to the caller's buffer; the AnalyticsEngine
// (engine.h) drives them all in a fixed order so the derived stream is
// deterministic.  Analyzers never touch a TraceBus — they are plain folds
// over the event sequence, which is what makes the online (bus-subscribed)
// and offline (`ccml_sim analyze` replay) paths provably identical.
//
// All sliding windows are anchored at the first event's timestamp and
// advanced by event time only, so results depend on the trace alone — not
// on delivery timing, thread counts, or sync-vs-async fan-out.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "obs/analytics/hdr_histogram.h"
#include "obs/trace_event.h"
#include "util/time.h"

namespace ccml {

/// Tuning knobs for the analyzers and anomaly detectors.  Defaults are
/// calibrated so a healthy dumbbell run (gated or not) reports zero
/// anomalies; see docs/analytics.md for the tuning rationale.
struct AnalyticsConfig {
  HdrHistogramConfig histogram;

  /// Link-series sampling period the engine asks the bus for (fairness,
  /// queue and collapse analytics need kLinkThroughput / kLinkQueue).
  /// Zero disables the request (sink-declared cadences still apply).
  Duration sample_cadence = Duration::millis(5);

  /// Jain-fairness window over per-job throughput shares.
  Duration fairness_window = Duration::millis(50);

  /// Phase-drift detector: windowed comm-overlap fraction (overlap / busy).
  /// Arms once interleaving is established (fraction <= arm threshold) and
  /// fires when it decays past the fire threshold; re-arms after settling.
  Duration drift_window = Duration::millis(100);
  double drift_arm_threshold = 0.10;
  double drift_fire_threshold = 0.25;

  /// Queue oscillation: direction reversals with amplitude >= max(min
  /// bytes, frac * link peak) counted over a window; firing clears the
  /// window (built-in cooldown).
  Duration oscillation_window = Duration::millis(250);
  int oscillation_min_swings = 12;
  double oscillation_min_amplitude_bytes = 64.0 * 1024.0;
  double oscillation_amplitude_frac = 0.5;

  /// Starvation: a job with >= min_iterations observed goes quiet for more
  /// than factor * its median iteration time.
  double starvation_factor = 8.0;
  int starvation_min_iterations = 3;

  /// Congestion collapse: a link's windowed goodput drops below ratio *
  /// its established peak while the queue stays above the floor.
  double collapse_ratio = 0.25;
  double collapse_min_queue_bytes = 256.0 * 1024.0;

  /// Dedicated-run iteration-time baselines (job id -> ms) for the
  /// slowdown-vs-dedicated section; jobs without an entry fall back to
  /// their own fastest observed iteration.
  std::map<std::int32_t, double> solo_ms;
};

// --- Iterations, slowdown, starvation --------------------------------------

class IterationAnalyzer {
 public:
  struct JobState {
    HdrHistogram hist;           ///< iteration times, ms
    double sum_ms = 0.0;         ///< exact running sum (report-only)
    double min_ms = 0.0;
    TimePoint last_iteration;    ///< time of the latest iteration edge
    bool saw_iteration = false;
    bool active = true;          ///< false once done / departed
    bool starving = false;       ///< inside a flagged starvation episode
    std::vector<double> sorted_ms;  ///< kept sorted for the median
  };

  explicit IterationAnalyzer(const AnalyticsConfig& config)
      : config_(&config) {}

  void on_event(const TraceEvent& ev, std::vector<TraceEvent>& derived);

  const std::map<std::int32_t, JobState>& jobs() const { return jobs_; }
  double median_ms(const JobState& job) const;
  std::uint64_t starvation_events() const { return starvation_events_; }

 private:
  const AnalyticsConfig* config_;
  std::map<std::int32_t, JobState> jobs_;
  std::uint64_t starvation_events_ = 0;
};

// --- Interleaving / compatibility ------------------------------------------

/// Integrates "how many jobs are in a comm phase" over time, globally (from
/// `phase` events) and per bottleneck link (from flow lifecycle events),
/// into busy vs overlapped nanoseconds; runs the phase-drift state machine
/// on the windowed global overlap fraction.
class InterleavingAnalyzer {
 public:
  struct Overlap {
    std::int64_t busy_ns = 0;     ///< >= 1 job in comm
    std::int64_t overlap_ns = 0;  ///< >= 2 jobs in comm
    /// 1 - overlap/busy: 1 = perfectly interleaved, 0 = fully overlapped.
    double score() const;
  };

  struct LinkState {
    std::map<std::int32_t, int> job_flows;  ///< job -> active flow count
    int jobs_active = 0;
    Overlap overlap;
    TimePoint last;
    bool started = false;
  };

  explicit InterleavingAnalyzer(const AnalyticsConfig& config)
      : config_(&config) {}

  void on_event(const TraceEvent& ev, std::vector<TraceEvent>& derived);
  /// Closes the open integration interval at trace end.
  void finish(TimePoint end, std::vector<TraceEvent>& derived);

  const Overlap& global() const { return global_; }
  const std::map<std::int32_t, LinkState>& per_link() const { return links_; }
  std::int64_t elapsed_ns() const {
    return started_ ? (last_ - first_).ns() : 0;
  }
  std::uint64_t drift_events() const { return drift_events_; }

 private:
  struct FlowState {
    /// Contended-link set the flow is charged to: the event's `links` array
    /// when present, else the single primary `link` — so multi-bottleneck
    /// traces attribute a flow to EVERY tied link, while legacy traces
    /// behave exactly as before.
    std::int32_t links[kTraceMaxContendedLinks] = {};
    std::uint8_t nlinks = 0;
    std::int32_t job = -1;
    bool active = false;
  };

  void advance_global(TimePoint t, std::vector<TraceEvent>& derived);
  void close_drift_window(TimePoint at, std::vector<TraceEvent>& derived);
  void link_integrate(LinkState& ls, TimePoint t);
  void link_flow_delta(std::int32_t link, std::int32_t job, int delta,
                       TimePoint t);

  const AnalyticsConfig* config_;

  // Global comm occupancy from phase events.
  std::map<std::int32_t, bool> in_comm_;  ///< job -> currently in "comm"
  int comm_jobs_ = 0;
  Overlap global_;
  TimePoint first_, last_;
  bool started_ = false;

  // Drift window accumulators (subset of the global integration).
  TimePoint window_end_;
  std::int64_t win_busy_ns_ = 0;
  std::int64_t win_overlap_ns_ = 0;
  enum class DriftState { kUnarmed, kArmed, kFired };
  DriftState drift_ = DriftState::kUnarmed;
  double armed_fraction_ = 0.0;
  std::uint64_t drift_events_ = 0;

  // Per-bottleneck-link occupancy from flow events.
  std::map<std::int64_t, FlowState> flows_;
  std::map<std::int32_t, LinkState> links_;
};

// --- Fairness, goodput, collapse -------------------------------------------

class FairnessAnalyzer {
 public:
  struct LinkState {
    double goodput_sum_bps = 0.0;  ///< sum of sampled link totals
    std::uint64_t goodput_samples = 0;
    // Collapse detector: windowed goodput vs established peak.
    double win_goodput_sum = 0.0;
    std::uint64_t win_goodput_n = 0;
    double win_queue_sum = 0.0;
    std::uint64_t win_queue_n = 0;
    double peak_window_bps = 0.0;
    bool collapsed = false;
  };

  explicit FairnessAnalyzer(const AnalyticsConfig& config)
      : config_(&config) {}

  void on_event(const TraceEvent& ev, std::vector<TraceEvent>& derived);
  void finish(TimePoint end, std::vector<TraceEvent>& derived);

  double jain_overall() const;
  /// Minimum windowed Jain index over windows with >= 2 active jobs;
  /// 1.0 when no such window exists.
  double jain_min_window() const { return windows_ ? jain_min_ : 1.0; }
  std::uint64_t windows() const { return windows_; }
  const std::map<std::int32_t, LinkState>& links() const { return links_; }
  std::uint64_t collapse_events() const { return collapse_events_; }

 private:
  void close_window(TimePoint at, std::vector<TraceEvent>& derived);

  const AnalyticsConfig* config_;
  std::map<std::int32_t, double> job_total_;  ///< job -> sum of share samples
  std::map<std::int32_t, double> job_window_;
  std::map<std::int32_t, LinkState> links_;
  TimePoint window_end_;
  bool started_ = false;
  double jain_min_ = 1.0;
  std::uint64_t windows_ = 0;
  std::uint64_t collapse_events_ = 0;
};

// --- Queue occupancy & oscillation -----------------------------------------

class QueueAnalyzer {
 public:
  struct LinkState {
    HdrHistogram hist;  ///< queue depth samples, bytes
    double peak_bytes = 0.0;
    // Oscillation detector.
    double prev = 0.0;
    bool have_prev = false;
    int direction = 0;            ///< sign of the last movement
    double last_extreme = 0.0;    ///< value at the last direction change
    std::deque<std::int64_t> swings_ns;  ///< times of qualifying reversals
  };

  explicit QueueAnalyzer(const AnalyticsConfig& config) : config_(&config) {}

  void on_event(const TraceEvent& ev, std::vector<TraceEvent>& derived);

  const std::map<std::int32_t, LinkState>& links() const { return links_; }
  std::uint64_t oscillation_events() const { return oscillation_events_; }

 private:
  const AnalyticsConfig* config_;
  std::map<std::int32_t, LinkState> links_;
  std::uint64_t oscillation_events_ = 0;
};

}  // namespace ccml
