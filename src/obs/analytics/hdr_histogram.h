// HDR-style log-bucketed histogram for streaming trace analytics.
//
// Values are binned into octaves (powers of two) split linearly into
// `sub_buckets_per_octave` slots, giving a bounded relative error
// (~1/sub_buckets) over a huge dynamic range with O(1) record cost and a
// few KB of integer counters.  Everything queryable is derived from the
// integer counts plus an exactly-tracked max, so two histograms recorded on
// different sweep shards merge associatively: merge(A, B) then merge(·, C)
// is bit-identical to a single pass over the concatenated samples.  (This
// is why mean() is computed from bucket midpoints rather than a running
// double sum — floating-point accumulation order would break that
// guarantee.)
#pragma once

#include <cstdint>
#include <vector>

namespace ccml {

struct HdrHistogramConfig {
  /// Values at or below this land in bucket 0; sets the bottom octave.
  double min_value = 1e-3;
  /// Linear slots per power-of-two octave; relative error ~= 1/sub_buckets.
  std::int32_t sub_buckets_per_octave = 32;
  /// Octaves covered above min_value; values beyond clamp into the last
  /// bucket.  50 octaves over 1e-3 reaches ~1e12.
  std::int32_t octaves = 50;
};

class HdrHistogram {
 public:
  explicit HdrHistogram(HdrHistogramConfig config = {});

  /// Records one sample.  Non-finite and negative values clamp to bucket 0.
  void record(double value);

  /// Folds `other` into this histogram.  Throws std::invalid_argument when
  /// the two geometries (min_value / sub-buckets / octaves) differ.
  void merge(const HdrHistogram& other);

  std::uint64_t count() const { return count_; }
  /// Exact maximum of the recorded values (0 when empty).
  double max() const { return max_; }
  /// Value at quantile `q` in [0, 100]: the midpoint of the bucket where the
  /// cumulative count first reaches q% (0 when empty).
  double percentile(double q) const;
  /// Bucket-midpoint mean — approximate (relative error ~1/sub_buckets) but
  /// exactly mergeable.  0 when empty.
  double mean() const;

  const HdrHistogramConfig& config() const { return config_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::size_t bucket_index(double value) const;
  double bucket_midpoint(std::size_t index) const;

  HdrHistogramConfig config_;
  std::vector<std::uint64_t> buckets_;  // grown lazily up to the top bucket
  std::uint64_t count_ = 0;
  double max_ = 0.0;
};

}  // namespace ccml
