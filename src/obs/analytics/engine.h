// AnalyticsEngine: one TraceSink that folds the event stream through every
// streaming analyzer (analyzers.h) and renders a structured run-health
// report with pass/fail SLO checks.
//
// The engine is the single code path for both delivery modes:
//
//   online   bus.add_sink(engine); engine.set_output(&jsonl_sink);
//            — the engine is the bus's sink and *chains* to a downstream
//            sink, forwarding each raw event and then any events it derives
//            (anomaly.*, flush-time histogram-summary) immediately after
//            their trigger.  Chaining instead of re-emitting on the bus
//            keeps the async SPSC path single-producer and the derived
//            ordering deterministic.
//
//   offline  ccml_sim analyze replays a JSONL trace through trace_reader.h
//            into the same on_event; derived kinds found in an annotated
//            input are skipped (re-derived, never double-counted), so
//            analyze(trace(run)) == online report, byte for byte — locked
//            in by tests/obs_analytics_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analytics/analyzers.h"
#include "obs/trace_bus.h"

namespace ccml {

/// Pass/fail gates evaluated into the report's "slo" section.  Negative
/// thresholds disable a check.
struct SloConfig {
  double min_fairness = -1.0;          ///< floor on windowed Jain minimum
  double max_mean_slowdown = -1.0;     ///< ceiling on mean slowdown-vs-solo
  double max_p99_iteration_ms = -1.0;  ///< ceiling on any job's p99
  int max_anomalies = -1;              ///< ceiling on total anomaly events
  bool require_anomaly = false;        ///< fault runs must detect something
};

struct RunHealthReport {
  std::string json;  ///< schema "ccml.run_health.v1"
  bool pass = true;  ///< conjunction of every enabled SLO check
};

class AnalyticsEngine final : public TraceSink {
 public:
  explicit AnalyticsEngine(AnalyticsConfig config = {});

  /// Chains a downstream sink: each raw event is forwarded (when
  /// `forward_raw`), followed by any derived events, and flush() cascades.
  /// The output sink must not also be subscribed to the bus directly.
  void set_output(TraceSink* output, bool forward_raw = true);

  // TraceSink -----------------------------------------------------------
  void on_event(const TraceEvent& ev) override;
  Duration sample_cadence() const override;
  std::vector<LinkId> sampled_links() const override;
  bool quiescence_compatible() const override;
  void attached(TraceBus& bus) override;
  /// Closes open windows/intervals, emits histogram-summary events to the
  /// chained output, and cascades flush.  Idempotent.
  void flush() override;

  /// Renders the run-health report; call after flush().
  RunHealthReport report(const SloConfig& slo = {}) const;

  /// Registers a dedicated-run iteration-time baseline for `job`'s
  /// slowdown-vs-dedicated section.  In-repo harnesses emit "solo-baseline"
  /// trace events instead (so serialized traces stay self-contained); this
  /// is the programmatic equivalent for embedders.  Jobs without a baseline
  /// fall back to their own fastest observed iteration.
  void set_solo_baseline(JobId job, double solo_ms) {
    if (job.valid() && solo_ms > 0.0) config_.solo_ms[job.value] = solo_ms;
  }

  // Introspection (tests, CLI) ------------------------------------------
  const IterationAnalyzer& iterations() const { return iter_; }
  const InterleavingAnalyzer& interleaving() const { return inter_; }
  const FairnessAnalyzer& fairness() const { return fair_; }
  const QueueAnalyzer& queues() const { return queue_; }
  const std::vector<TraceEvent>& anomalies() const { return anomalies_; }
  std::uint64_t events_processed() const { return events_; }
  std::uint64_t trace_drops() const { return drops_; }
  const AnalyticsConfig& config() const { return config_; }

 private:
  void fold_meta(const TraceEvent& ev);
  void emit_derived();

  AnalyticsConfig config_;
  TraceSink* output_ = nullptr;
  bool forward_raw_ = true;

  IterationAnalyzer iter_;
  InterleavingAnalyzer inter_;
  FairnessAnalyzer fair_;
  QueueAnalyzer queue_;

  std::vector<TraceEvent> derived_buf_;
  std::vector<TraceEvent> anomalies_;

  // Stream metadata.
  std::uint64_t events_ = 0;
  std::uint64_t drops_ = 0;
  TimePoint first_, last_;
  bool saw_first_ = false;
  bool flushed_ = false;

  // Solver predictions (kSolve) for the measured-vs-predicted section.
  std::uint64_t solves_ = 0;
  double last_solve_compatible_ = -1.0;
  double last_solve_violation_ = -1.0;

  // Admission epochs (kJobAdmit / kJobDepart boundaries).
  struct Epoch {
    TimePoint start;
    const char* trigger;  ///< "start" | "job-admit" | "job-depart"
    std::int32_t job = -1;
    std::uint64_t iterations = 0;
    double iteration_sum_ms = 0.0;
    std::uint64_t rejects = 0;
  };
  std::vector<Epoch> epochs_;
};

/// True for kinds the engine itself derives (anomaly.*, histogram-summary):
/// skipped on input so replaying an annotated trace re-derives them.
bool is_analytics_derived(TraceEventKind kind);

}  // namespace ccml
