#include "obs/analytics/hdr_histogram.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ccml {

namespace {

// Exponent e such that value lies in [2^(e-1), 2^e), i.e. frexp's exponent
// for the normalized mantissa in [0.5, 1).
int octave_of(double value) {
  int e = 0;
  (void)std::frexp(value, &e);
  return e;
}

}  // namespace

HdrHistogram::HdrHistogram(HdrHistogramConfig config) : config_(config) {
  if (!(config_.min_value > 0.0)) {
    throw std::invalid_argument("HdrHistogram: min_value must be positive");
  }
  if (config_.sub_buckets_per_octave < 1 || config_.octaves < 1) {
    throw std::invalid_argument(
        "HdrHistogram: sub_buckets_per_octave and octaves must be >= 1");
  }
}

std::size_t HdrHistogram::bucket_index(double value) const {
  if (!std::isfinite(value) || value <= config_.min_value) return 0;
  const int base = octave_of(config_.min_value);
  const int oct = octave_of(value) - base;
  const std::int32_t sub = config_.sub_buckets_per_octave;
  if (oct < 0) return 0;
  if (oct >= config_.octaves) {
    return static_cast<std::size_t>(config_.octaves) *
               static_cast<std::size_t>(sub) -
           1;
  }
  // Position of the mantissa within its octave [2^(e-1), 2^e): frexp's
  // mantissa m is in [0.5, 1), so (2m - 1) sweeps [0, 1) linearly.
  int e = 0;
  const double m = std::frexp(value, &e);
  auto slot = static_cast<std::int32_t>((2.0 * m - 1.0) * sub);
  if (slot >= sub) slot = sub - 1;  // guard the m -> 1 rounding edge
  return static_cast<std::size_t>(oct) * static_cast<std::size_t>(sub) +
         static_cast<std::size_t>(slot);
}

double HdrHistogram::bucket_midpoint(std::size_t index) const {
  if (index == 0) return config_.min_value;
  const std::int32_t sub = config_.sub_buckets_per_octave;
  const auto oct = static_cast<std::int32_t>(index / sub);
  const auto slot = static_cast<std::int32_t>(index % sub);
  // Bucket `index` covers [lo, lo + width) inside octave `oct` above the
  // min_value octave: the octave spans [2^(base+oct-1), 2^(base+oct)).
  const int base = octave_of(config_.min_value);
  const double octave_lo = std::ldexp(0.5, base + oct);
  const double width = octave_lo / sub;  // octave span = octave_lo
  return octave_lo + width * (static_cast<double>(slot) + 0.5);
}

void HdrHistogram::record(double value) {
  const std::size_t idx = bucket_index(value);
  if (buckets_.size() <= idx) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++count_;
  if (std::isfinite(value) && value > max_) max_ = value;
}

void HdrHistogram::merge(const HdrHistogram& other) {
  if (other.config_.min_value != config_.min_value ||
      other.config_.sub_buckets_per_octave != config_.sub_buckets_per_octave ||
      other.config_.octaves != config_.octaves) {
    throw std::invalid_argument("HdrHistogram::merge: geometry mismatch");
  }
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  if (other.max_ > max_) max_ = other.max_;
}

double HdrHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 100.0) q = 100.0;
  // Rank of the target sample, 1-based; ceil so p100 is the last sample.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q / 100.0 * static_cast<double>(count_)));
  const std::uint64_t rank = target == 0 ? 1 : target;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Never report beyond the exactly-tracked max (the top bucket's
      // midpoint can overshoot it).
      const double mid = bucket_midpoint(i);
      return mid < max_ ? mid : max_;
    }
  }
  return max_;
}

double HdrHistogram::mean() const {
  if (count_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      sum += bucket_midpoint(i) * static_cast<double>(buckets_[i]);
    }
  }
  return sum / static_cast<double>(count_);
}

}  // namespace ccml
