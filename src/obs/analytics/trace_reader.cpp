#include "obs/analytics/trace_reader.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

namespace ccml {

namespace {

// TraceEvent::detail must point at static-storage strings; replayed details
// are interned here for the life of the process.  std::string's heap buffer
// is stable across rehashes, so the returned pointers never move.
const char* intern_detail(const std::string& s) {
  static std::unordered_set<std::string> pool;
  return pool.insert(s).first->c_str();
}

bool take(const char*& p, const char* literal) {
  const std::size_t n = std::strlen(literal);
  if (std::strncmp(p, literal, n) != 0) return false;
  p += n;
  return true;
}

bool take_double(const char*& p, double& out) {
  char* end = nullptr;
  out = std::strtod(p, &end);
  if (end == p) return false;
  p = end;
  return true;
}

bool take_quoted(const char*& p, std::string& out) {
  // Kind and detail strings are emitted verbatim by JsonlSink (no escapes).
  const char* close = std::strchr(p, '"');
  if (close == nullptr) return false;
  out.assign(p, close);
  p = close + 1;
  return true;
}

bool fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool parse_trace_jsonl_line(const std::string& line, TraceEvent& out,
                            std::string* error) {
  const char* p = line.c_str();
  out = TraceEvent{};

  double t_us = 0.0;
  if (!take(p, "{\"t_us\":") || !take_double(p, t_us)) {
    return fail(error, "expected {\"t_us\":<number>");
  }
  // t_us carries three decimals = whole nanoseconds; llround undoes the
  // division's representation error exactly.
  out.time =
      TimePoint::origin() + Duration::nanos(std::llround(t_us * 1000.0));

  std::string kind;
  if (!take(p, ",\"kind\":\"") || !take_quoted(p, kind)) {
    return fail(error, "expected \"kind\":\"...\"");
  }
  if (!trace_event_kind_from_string(kind.c_str(), out.kind)) {
    if (error != nullptr) *error = "unknown event kind \"" + kind + "\"";
    return false;
  }

  if (take(p, ",\"job\":")) {
    double v = 0.0;
    if (!take_double(p, v)) return fail(error, "bad \"job\" value");
    out.job = JobId{static_cast<std::int32_t>(v)};
  }
  if (take(p, ",\"flow\":")) {
    double v = 0.0;
    if (!take_double(p, v)) return fail(error, "bad \"flow\" value");
    out.flow = FlowId{static_cast<std::int64_t>(v)};
  }
  if (take(p, ",\"link\":")) {
    double v = 0.0;
    if (!take_double(p, v)) return fail(error, "bad \"link\" value");
    out.link = LinkId{static_cast<std::int32_t>(v)};
  }
  // Optional contended-link set (flow events on multi-bottleneck routes);
  // absent for single-bottleneck routes and pre-multi-bottleneck traces.
  if (take(p, ",\"links\":[")) {
    int count = 0;
    while (true) {
      double v = 0.0;
      if (!take_double(p, v)) return fail(error, "bad \"links\" entry");
      if (count >= kTraceMaxContendedLinks) {
        return fail(error, "too many \"links\" entries");
      }
      out.links[count++] = LinkId{static_cast<std::int32_t>(v)};
      if (take(p, "]")) break;
      if (!take(p, ",")) return fail(error, "expected , or ] in \"links\"");
    }
    out.link_count = static_cast<std::uint8_t>(count);
  }
  if (take(p, ",\"value\":")) {
    if (!take_double(p, out.value)) return fail(error, "bad \"value\"");
  }
  if (take(p, ",\"value2\":")) {
    if (!take_double(p, out.value2)) return fail(error, "bad \"value2\"");
  }
  if (take(p, ",\"detail\":\"")) {
    std::string detail;
    if (!take_quoted(p, detail)) return fail(error, "bad \"detail\"");
    out.detail = intern_detail(detail);
  }
  if (!take(p, "}")) return fail(error, "expected closing }");
  return true;
}

bool replay_trace_jsonl(std::istream& in, TraceSink& sink,
                        TraceReplayStats& stats, std::string* error) {
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      ++stats.blank_lines;
      continue;
    }
    TraceEvent ev;
    std::string why;
    if (!parse_trace_jsonl_line(line, ev, &why)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " + why;
      }
      return false;
    }
    sink.on_event(ev);
    ++stats.events;
  }
  return true;
}

}  // namespace ccml
