#include "obs/analytics/engine.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>

namespace ccml {

bool is_analytics_derived(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAnomalyPhaseDrift:
    case TraceEventKind::kAnomalyQueueOscillation:
    case TraceEventKind::kAnomalyStarvation:
    case TraceEventKind::kAnomalyCongestionCollapse:
    case TraceEventKind::kHistogramSummary:
      return true;
    default:
      return false;
  }
}

AnalyticsEngine::AnalyticsEngine(AnalyticsConfig config)
    : config_(std::move(config)),
      iter_(config_),
      inter_(config_),
      fair_(config_),
      queue_(config_) {}

void AnalyticsEngine::set_output(TraceSink* output, bool forward_raw) {
  output_ = output;
  forward_raw_ = forward_raw;
}

Duration AnalyticsEngine::sample_cadence() const {
  // The engine's fairness/queue analytics need the integrated link series;
  // negotiate the minimum positive cadence with the chained output.
  Duration mine = config_.sample_cadence;
  if (output_ != nullptr) {
    const Duration theirs = output_->sample_cadence();
    if (theirs.is_positive() && (!mine.is_positive() || theirs < mine)) {
      mine = theirs;
    }
  }
  return mine;
}

std::vector<LinkId> AnalyticsEngine::sampled_links() const {
  return output_ != nullptr ? output_->sampled_links()
                            : std::vector<LinkId>{};
}

bool AnalyticsEngine::quiescence_compatible() const {
  return output_ == nullptr || output_->quiescence_compatible();
}

void AnalyticsEngine::attached(TraceBus& bus) {
  if (output_ != nullptr) output_->attached(bus);
}

void AnalyticsEngine::emit_derived() {
  for (const TraceEvent& d : derived_buf_) {
    anomalies_.push_back(d);
    if (output_ != nullptr) output_->on_event(d);
  }
  derived_buf_.clear();
}

void AnalyticsEngine::on_event(const TraceEvent& ev) {
  if (output_ != nullptr && forward_raw_) output_->on_event(ev);
  if (is_analytics_derived(ev.kind)) return;  // re-derive, never double-count

  ++events_;
  if (!saw_first_) {
    saw_first_ = true;
    first_ = ev.time;
    epochs_.push_back(Epoch{ev.time, "start", -1, 0, 0.0, 0});
  }
  if (ev.time > last_) last_ = ev.time;

  derived_buf_.clear();
  iter_.on_event(ev, derived_buf_);
  inter_.on_event(ev, derived_buf_);
  fair_.on_event(ev, derived_buf_);
  queue_.on_event(ev, derived_buf_);
  fold_meta(ev);
  emit_derived();
}

void AnalyticsEngine::fold_meta(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kTraceDrops:
      drops_ += static_cast<std::uint64_t>(ev.value);
      break;
    case TraceEventKind::kSoloBaseline:
      if (ev.job.valid() && ev.value > 0.0) {
        config_.solo_ms[ev.job.value] = ev.value;
      }
      break;
    case TraceEventKind::kSolve:
      ++solves_;
      last_solve_compatible_ = ev.value;
      last_solve_violation_ = ev.value2;
      break;
    case TraceEventKind::kIteration:
      if (!epochs_.empty()) {
        ++epochs_.back().iterations;
        epochs_.back().iteration_sum_ms += ev.value;
      }
      break;
    case TraceEventKind::kJobAdmit:
      epochs_.push_back(
          Epoch{ev.time, "job-admit", ev.job.value, 0, 0.0, 0});
      break;
    case TraceEventKind::kJobDepart:
      epochs_.push_back(
          Epoch{ev.time, "job-depart", ev.job.value, 0, 0.0, 0});
      break;
    case TraceEventKind::kJobReject:
      if (!epochs_.empty()) ++epochs_.back().rejects;
      break;
    default:
      break;
  }
}

void AnalyticsEngine::flush() {
  if (!flushed_) {
    flushed_ = true;
    if (saw_first_) {
      derived_buf_.clear();
      inter_.finish(last_, derived_buf_);
      fair_.finish(last_, derived_buf_);
      emit_derived();
      if (output_ != nullptr) {
        // Flush-time digests, in id order: one summary per job iteration
        // histogram and per link queue histogram.
        for (const auto& [id, js] : iter_.jobs()) {
          if (js.hist.count() == 0) continue;
          TraceEvent ev;
          ev.time = last_;
          ev.kind = TraceEventKind::kHistogramSummary;
          ev.job = JobId{id};
          ev.value = js.hist.percentile(99.0);
          ev.value2 = static_cast<double>(js.hist.count());
          ev.detail = "iteration_ms";
          output_->on_event(ev);
        }
        for (const auto& [id, ls] : queue_.links()) {
          if (ls.hist.count() == 0) continue;
          TraceEvent ev;
          ev.time = last_;
          ev.kind = TraceEventKind::kHistogramSummary;
          ev.link = LinkId{id};
          ev.value = ls.hist.percentile(99.0);
          ev.value2 = static_cast<double>(ls.hist.count());
          ev.detail = "queue_bytes";
          output_->on_event(ev);
        }
      }
    }
  }
  if (output_ != nullptr) output_->flush();
}

// --- Report rendering -------------------------------------------------------

namespace {

[[gnu::format(printf, 2, 3)]] void put(std::string& out, const char* fmt,
                                       ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

struct SloRow {
  const char* name;
  double threshold;
  double actual;
  bool pass;
};

}  // namespace

RunHealthReport AnalyticsEngine::report(const SloConfig& slo) const {
  const std::int64_t elapsed_ns = saw_first_ ? (last_ - first_).ns() : 0;
  const double elapsed = static_cast<double>(elapsed_ns);

  std::string j;
  j.reserve(4096);
  j += "{\n  \"schema\": \"ccml.run_health.v1\",\n";
  put(j, "  \"duration_ms\": %.6g,\n",
      saw_first_ ? (last_ - first_).to_millis() : 0.0);
  put(j, "  \"events\": %" PRIu64 ",\n", events_);
  put(j, "  \"trace_drops\": %" PRIu64 ",\n", drops_);
  put(j, "  \"lower_bound\": %s,\n", drops_ > 0 ? "true" : "false");

  // Jobs: iteration-time distribution and slowdown-vs-dedicated.
  double slowdown_sum = 0.0;
  int slowdown_n = 0;
  j += "  \"jobs\": [";
  bool first_row = true;
  for (const auto& [id, js] : iter_.jobs()) {
    if (js.hist.count() == 0) continue;
    const double mean = js.sum_ms / static_cast<double>(js.hist.count());
    const auto solo_it = config_.solo_ms.find(id);
    const double solo =
        solo_it != config_.solo_ms.end() ? solo_it->second : js.min_ms;
    const double slowdown = solo > 0.0 ? mean / solo : 0.0;
    if (slowdown > 0.0) {
      slowdown_sum += slowdown;
      ++slowdown_n;
    }
    put(j, "%s\n    {\"id\": %d, \"iterations\": %" PRIu64
           ", \"p50_ms\": %.6g, \"p90_ms\": %.6g, \"p99_ms\": %.6g, "
           "\"max_ms\": %.6g, \"mean_ms\": %.6g, \"solo_ms\": %.6g, "
           "\"slowdown\": %.6g}",
        first_row ? "" : ",", id, js.hist.count(), js.hist.percentile(50.0),
        js.hist.percentile(90.0), js.hist.percentile(99.0), js.hist.max(),
        mean, solo, slowdown);
    first_row = false;
  }
  j += first_row ? "],\n" : "\n  ],\n";
  const double mean_slowdown =
      slowdown_n > 0 ? slowdown_sum / slowdown_n : 0.0;

  // Links: union of everything the per-link analyzers saw.
  std::set<std::int32_t> link_ids;
  for (const auto& [id, ls] : queue_.links()) link_ids.insert(id);
  for (const auto& [id, ov] : inter_.per_link()) link_ids.insert(id);
  for (const auto& [id, ls] : fair_.links()) link_ids.insert(id);
  j += "  \"links\": [";
  first_row = true;
  for (const std::int32_t id : link_ids) {
    double q50 = 0.0, q99 = 0.0, qmax = 0.0;
    if (const auto it = queue_.links().find(id); it != queue_.links().end()) {
      q50 = it->second.hist.percentile(50.0);
      q99 = it->second.hist.percentile(99.0);
      qmax = it->second.hist.max();
    }
    double score = 1.0, overlap_frac = 0.0;
    if (const auto it = inter_.per_link().find(id);
        it != inter_.per_link().end()) {
      score = it->second.overlap.score();
      overlap_frac =
          elapsed > 0.0
              ? static_cast<double>(it->second.overlap.overlap_ns) / elapsed
              : 0.0;
    }
    double goodput_gbps = 0.0;
    if (const auto it = fair_.links().find(id); it != fair_.links().end()) {
      if (it->second.goodput_samples > 0) {
        goodput_gbps = it->second.goodput_sum_bps /
                       static_cast<double>(it->second.goodput_samples) / 1e9;
      }
    }
    put(j, "%s\n    {\"id\": %d, \"queue_p50_bytes\": %.6g, "
           "\"queue_p99_bytes\": %.6g, \"queue_max_bytes\": %.6g, "
           "\"interleaving_score\": %.6g, \"overlap_fraction\": %.6g, "
           "\"mean_goodput_gbps\": %.6g}",
        first_row ? "" : ",", id, q50, q99, qmax, score, overlap_frac,
        goodput_gbps);
    first_row = false;
  }
  j += first_row ? "],\n" : "\n  ],\n";

  // Global interleaving vs the solver's prediction.
  const auto& g = inter_.global();
  const double overlap_fraction =
      elapsed > 0.0 ? static_cast<double>(g.overlap_ns) / elapsed : 0.0;
  const double busy_fraction =
      elapsed > 0.0 ? static_cast<double>(g.busy_ns) / elapsed : 0.0;
  put(j, "  \"interleaving\": {\"score\": %.6g, \"overlap_fraction\": %.6g, "
         "\"busy_fraction\": %.6g, \"solves\": %" PRIu64
         ", \"predicted_compatible\": %.6g, \"predicted_violation\": %.6g},\n",
      g.score(), overlap_fraction, busy_fraction, solves_,
      last_solve_compatible_, last_solve_violation_);

  put(j, "  \"fairness\": {\"jain_overall\": %.6g, \"jain_min_window\": %.6g, "
         "\"windows\": %" PRIu64 "},\n",
      fair_.jain_overall(), fair_.jain_min_window(), fair_.windows());

  // Anomalies, in derivation order.
  j += "  \"anomalies\": [";
  first_row = true;
  std::uint64_t counts[4] = {0, 0, 0, 0};
  for (const TraceEvent& a : anomalies_) {
    switch (a.kind) {
      case TraceEventKind::kAnomalyPhaseDrift: ++counts[0]; break;
      case TraceEventKind::kAnomalyQueueOscillation: ++counts[1]; break;
      case TraceEventKind::kAnomalyStarvation: ++counts[2]; break;
      case TraceEventKind::kAnomalyCongestionCollapse: ++counts[3]; break;
      default: break;
    }
    put(j, "%s\n    {\"t_ms\": %.6g, \"kind\": \"%s\", \"job\": %d, "
           "\"link\": %d, \"value\": %.6g, \"value2\": %.6g}",
        first_row ? "" : ",", a.time.to_millis(), to_string(a.kind),
        a.job.value, a.link.value, a.value, a.value2);
    first_row = false;
  }
  j += first_row ? "],\n" : "\n  ],\n";
  const std::uint64_t total_anomalies =
      counts[0] + counts[1] + counts[2] + counts[3];
  put(j, "  \"anomaly_counts\": {\"phase_drift\": %" PRIu64
         ", \"queue_oscillation\": %" PRIu64 ", \"starvation\": %" PRIu64
         ", \"congestion_collapse\": %" PRIu64 ", \"total\": %" PRIu64
         "},\n",
      counts[0], counts[1], counts[2], counts[3], total_anomalies);

  // Admission epochs.
  j += "  \"epochs\": [";
  first_row = true;
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    const Epoch& e = epochs_[i];
    const TimePoint end = i + 1 < epochs_.size() ? epochs_[i + 1].start : last_;
    const double mean_iter =
        e.iterations > 0
            ? e.iteration_sum_ms / static_cast<double>(e.iterations)
            : 0.0;
    put(j, "%s\n    {\"start_ms\": %.6g, \"end_ms\": %.6g, \"trigger\": "
           "\"%s\", \"job\": %d, \"iterations\": %" PRIu64
           ", \"mean_iteration_ms\": %.6g, \"rejects\": %" PRIu64 "}",
        first_row ? "" : ",", e.start.to_millis(), end.to_millis(), e.trigger,
        e.job, e.iterations, mean_iter, e.rejects);
    first_row = false;
  }
  j += first_row ? "],\n" : "\n  ],\n";

  // SLO evaluation.
  std::vector<SloRow> rows;
  if (slo.min_fairness >= 0.0) {
    const double actual = fair_.jain_min_window();
    rows.push_back({"min_fairness", slo.min_fairness, actual,
                    actual >= slo.min_fairness});
  }
  if (slo.max_mean_slowdown >= 0.0) {
    rows.push_back({"max_mean_slowdown", slo.max_mean_slowdown, mean_slowdown,
                    mean_slowdown <= slo.max_mean_slowdown});
  }
  if (slo.max_p99_iteration_ms >= 0.0) {
    double worst_p99 = 0.0;
    for (const auto& [id, js] : iter_.jobs()) {
      if (js.hist.count() == 0) continue;
      const double p99 = js.hist.percentile(99.0);
      if (p99 > worst_p99) worst_p99 = p99;
    }
    rows.push_back({"max_p99_iteration_ms", slo.max_p99_iteration_ms,
                    worst_p99, worst_p99 <= slo.max_p99_iteration_ms});
  }
  if (slo.max_anomalies >= 0) {
    rows.push_back({"max_anomalies", static_cast<double>(slo.max_anomalies),
                    static_cast<double>(total_anomalies),
                    total_anomalies <=
                        static_cast<std::uint64_t>(slo.max_anomalies)});
  }
  if (slo.require_anomaly) {
    rows.push_back({"require_anomaly", 1.0,
                    static_cast<double>(total_anomalies),
                    total_anomalies >= 1});
  }
  bool pass = true;
  j += "  \"slo\": [";
  first_row = true;
  for (const SloRow& r : rows) {
    pass = pass && r.pass;
    put(j, "%s\n    {\"name\": \"%s\", \"threshold\": %.6g, \"actual\": "
           "%.6g, \"pass\": %s}",
        first_row ? "" : ",", r.name, r.threshold, r.actual,
        r.pass ? "true" : "false");
    first_row = false;
  }
  j += first_row ? "],\n" : "\n  ],\n";
  put(j, "  \"pass\": %s\n}\n", pass ? "true" : "false");

  return RunHealthReport{std::move(j), pass};
}

}  // namespace ccml
