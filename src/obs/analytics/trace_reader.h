// Offline companion to the streaming analyzers: parses JSONL traces (the
// JsonlSink wire format) back into TraceEvents and replays them through any
// TraceSink — in practice the AnalyticsEngine, giving `ccml_sim analyze`
// the exact same code path as online analysis.
//
// The round trip is exact: t_us is written with three decimals (whole
// nanoseconds), value/value2 with %.17g (lossless for doubles), ids as
// integers, and omitted fields default to the same invalid/zero values the
// producer left unset — so a replayed event folds identically to the live
// one and the offline report is byte-identical to the online report
// (proved by tests/obs_analytics_test.cpp).
#pragma once

#include <cstdint>
#include <istream>
#include <string>

#include "obs/trace_bus.h"
#include "obs/trace_event.h"

namespace ccml {

/// Parses one JSONL trace line into `out`.  Returns false (with a message
/// in `error` when non-null) on malformed input or an unknown event kind.
/// `detail` strings are interned into a process-lifetime pool to satisfy
/// TraceEvent's static-storage contract (single-threaded use only).
bool parse_trace_jsonl_line(const std::string& line, TraceEvent& out,
                            std::string* error = nullptr);

struct TraceReplayStats {
  std::uint64_t events = 0;        ///< events delivered to the sink
  std::uint64_t blank_lines = 0;   ///< empty lines skipped
};

/// Streams a JSONL trace through `sink` line by line.  Stops at the first
/// malformed line (returns false, fills `error` with the line number and
/// reason); the caller is responsible for calling sink.flush() after a
/// successful replay.
bool replay_trace_jsonl(std::istream& in, TraceSink& sink,
                        TraceReplayStats& stats, std::string* error = nullptr);

}  // namespace ccml
