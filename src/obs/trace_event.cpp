#include "obs/trace_event.h"

namespace ccml {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kFlowStart: return "flow-start";
    case TraceEventKind::kFlowFinish: return "flow-finish";
    case TraceEventKind::kFlowAbort: return "flow-abort";
    case TraceEventKind::kFlowReroute: return "flow-reroute";
    case TraceEventKind::kFlowPark: return "flow-park";
    case TraceEventKind::kFlowUnpark: return "flow-unpark";
    case TraceEventKind::kRateDecrease: return "rate-decrease";
    case TraceEventKind::kRateTimer: return "rate-timer";
    case TraceEventKind::kPhase: return "phase";
    case TraceEventKind::kIteration: return "iteration";
    case TraceEventKind::kGateOpen: return "gate-open";
    case TraceEventKind::kFaultApply: return "fault-apply";
    case TraceEventKind::kFaultRecover: return "fault-recover";
    case TraceEventKind::kSolve: return "solve";
    case TraceEventKind::kJobSubmit: return "job-submit";
    case TraceEventKind::kJobAdmit: return "job-admit";
    case TraceEventKind::kJobReject: return "job-reject";
    case TraceEventKind::kJobDepart: return "job-depart";
    case TraceEventKind::kLinkThroughput: return "link-throughput";
    case TraceEventKind::kLinkQueue: return "link-queue";
    case TraceEventKind::kTraceDrops: return "trace-drops";
  }
  return "unknown";
}

}  // namespace ccml
