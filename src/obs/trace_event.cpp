#include "obs/trace_event.h"

#include <cstring>

namespace ccml {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kFlowStart: return "flow-start";
    case TraceEventKind::kFlowFinish: return "flow-finish";
    case TraceEventKind::kFlowAbort: return "flow-abort";
    case TraceEventKind::kFlowReroute: return "flow-reroute";
    case TraceEventKind::kFlowPark: return "flow-park";
    case TraceEventKind::kFlowUnpark: return "flow-unpark";
    case TraceEventKind::kRateDecrease: return "rate-decrease";
    case TraceEventKind::kRateTimer: return "rate-timer";
    case TraceEventKind::kPhase: return "phase";
    case TraceEventKind::kIteration: return "iteration";
    case TraceEventKind::kGateOpen: return "gate-open";
    case TraceEventKind::kFaultApply: return "fault-apply";
    case TraceEventKind::kFaultRecover: return "fault-recover";
    case TraceEventKind::kSolve: return "solve";
    case TraceEventKind::kJobSubmit: return "job-submit";
    case TraceEventKind::kJobAdmit: return "job-admit";
    case TraceEventKind::kJobReject: return "job-reject";
    case TraceEventKind::kJobDepart: return "job-depart";
    case TraceEventKind::kLinkThroughput: return "link-throughput";
    case TraceEventKind::kLinkQueue: return "link-queue";
    case TraceEventKind::kTraceDrops: return "trace-drops";
    case TraceEventKind::kSoloBaseline: return "solo-baseline";
    case TraceEventKind::kAnomalyPhaseDrift: return "anomaly.phase_drift";
    case TraceEventKind::kAnomalyQueueOscillation:
      return "anomaly.queue_oscillation";
    case TraceEventKind::kAnomalyStarvation: return "anomaly.starvation";
    case TraceEventKind::kAnomalyCongestionCollapse:
      return "anomaly.congestion_collapse";
    case TraceEventKind::kHistogramSummary: return "histogram-summary";
    case TraceEventKind::kCkptWrite: return "ckpt.write";
    case TraceEventKind::kCkptBranch: return "ckpt.branch";
    case TraceEventKind::kCcDecision: return "cc.decision";
    case TraceEventKind::kCcPhase: return "cc.phase";
  }
  return "unknown";
}

bool trace_event_kind_from_string(const char* name, TraceEventKind& out) {
  // The kind space is small and this only runs in the offline reader, so a
  // linear scan over the canonical spellings keeps one source of truth.
  constexpr TraceEventKind kAll[] = {
      TraceEventKind::kFlowStart,
      TraceEventKind::kFlowFinish,
      TraceEventKind::kFlowAbort,
      TraceEventKind::kFlowReroute,
      TraceEventKind::kFlowPark,
      TraceEventKind::kFlowUnpark,
      TraceEventKind::kRateDecrease,
      TraceEventKind::kRateTimer,
      TraceEventKind::kPhase,
      TraceEventKind::kIteration,
      TraceEventKind::kGateOpen,
      TraceEventKind::kFaultApply,
      TraceEventKind::kFaultRecover,
      TraceEventKind::kSolve,
      TraceEventKind::kJobSubmit,
      TraceEventKind::kJobAdmit,
      TraceEventKind::kJobReject,
      TraceEventKind::kJobDepart,
      TraceEventKind::kLinkThroughput,
      TraceEventKind::kLinkQueue,
      TraceEventKind::kTraceDrops,
      TraceEventKind::kSoloBaseline,
      TraceEventKind::kAnomalyPhaseDrift,
      TraceEventKind::kAnomalyQueueOscillation,
      TraceEventKind::kAnomalyStarvation,
      TraceEventKind::kAnomalyCongestionCollapse,
      TraceEventKind::kHistogramSummary,
      TraceEventKind::kCkptWrite,
      TraceEventKind::kCkptBranch,
      TraceEventKind::kCcDecision,
      TraceEventKind::kCcPhase,
  };
  for (const TraceEventKind k : kAll) {
    if (std::strcmp(name, to_string(k)) == 0) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace ccml
