// Run-level scalar metrics: monotonically increasing Counters and
// last/peak-tracking Gauges, owned by the TraceBus registry and handed out
// as stable references so hot paths pay one map lookup per run, not per
// increment.
#pragma once

#include <cstdint>

namespace ccml {

/// A monotonically increasing event count (CNPs delivered, flows finished,
/// faults applied, ...).
class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// A sampled scalar; remembers the latest value and the peak ever set
/// (queue depths, parked-flow population, ...).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (!set_ || v > max_) max_ = v;
    set_ = true;
  }
  double value() const { return value_; }
  double max() const { return max_; }
  bool ever_set() const { return set_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool set_ = false;
};

}  // namespace ccml
