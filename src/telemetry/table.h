// Plain-text table rendering for bench output.
#pragma once

#include <string>
#include <vector>

namespace ccml {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator row.
  void add_rule();

  std::string render() const;

  /// Convenience formatter ("%.1f" style) for numeric cells.
  static std::string num(double v, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  struct Row {
    bool rule = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace ccml
