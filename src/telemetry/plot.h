// ASCII plotting for bench output: line charts for time series (Fig. 1b/1c,
// Fig. 2), CDF curves (Fig. 1d) and circle diagrams for the geometric
// abstraction (Fig. 3/4/5).
#pragma once

#include <string>
#include <vector>

#include "util/circular.h"
#include "util/stats.h"

namespace ccml {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

struct PlotOptions {
  int width = 78;
  int height = 16;
  std::string x_label;
  std::string y_label;
};

/// Renders one or more series on a shared scale; each series gets its own
/// glyph ('*', 'o', '+', ...).
std::string render_plot(const std::vector<Series>& series,
                        PlotOptions options = {});

/// Renders a CDF as a plot series.
Series cdf_series(std::string name, const Cdf& cdf, std::size_t points = 60);

/// Renders circular interval sets as concentric text rings — the paper's
/// circle figures.  Each set is drawn as one ring; covered arcs print the
/// set's glyph.
std::string render_circle(const std::vector<CircularIntervalSet>& rings,
                          const std::vector<char>& glyphs, int radius = 11);

/// One-line sparkline of values (8-level unicode blocks).
std::string sparkline(const std::vector<double>& values);

}  // namespace ccml
