#include "telemetry/table.h"

#include <algorithm>
#include <cstdio>

namespace ccml {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back({false, std::move(cells)});
}

void TextTable::add_rule() { rows_.push_back({true, {}}); }

std::string TextTable::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& r : rows_) {
    if (r.rule) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }
  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += std::string(w + 2, '-') + "+";
    }
    return line + "\n";
  };
  std::string out = rule() + render_line(headers_) + rule();
  for (const Row& r : rows_) {
    out += r.rule ? rule() : render_line(r.cells);
  }
  out += rule();
  return out;
}

}  // namespace ccml
