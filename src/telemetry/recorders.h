// Telemetry recorders hooked into the Network's step observer.
//
// These produce exactly the series the paper plots: per-job throughput over
// time (Fig. 1b/1c), per-job link utilization across iterations (Fig. 2) and
// iteration-time CDFs (Fig. 1d).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/types.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/units.h"

namespace ccml {

/// Samples the total and per-job throughput crossing one link at a fixed
/// interval (time-weighted average over the interval).
class LinkThroughputRecorder {
 public:
  LinkThroughputRecorder(LinkId link, Duration interval);

  /// Registers with the network; call once before the run.
  void attach(Network& net);

  struct Sample {
    TimePoint time;                       ///< end of the interval
    Rate total;                           ///< all traffic on the link
    std::map<JobId, Rate> per_job;        ///< split by flow job tag
  };
  const std::vector<Sample>& samples() const { return samples_; }

  /// All job ids ever seen on the link, sorted.
  std::vector<JobId> jobs_seen() const;

 private:
  void on_step(const Network& net, TimePoint now);

  LinkId link_;
  Duration interval_;
  TimePoint window_start_;
  Duration accumulated_ = Duration::zero();
  double total_bits_ = 0.0;
  std::map<JobId, double> job_bits_;
  std::vector<Sample> samples_;
  bool attached_ = false;
};

/// Collects iteration durations per job into CDFs.
class IterationRecorder {
 public:
  void record(JobId job, Duration iteration);

  const Cdf& cdf(JobId job) const;
  bool has(JobId job) const { return cdfs_.contains(job); }
  std::vector<JobId> jobs() const;

  /// Median iteration time in milliseconds.
  double median_ms(JobId job) const { return cdf(job).median(); }
  double mean_ms(JobId job) const { return cdf(job).mean(); }

 private:
  std::map<JobId, Cdf> cdfs_;
};

}  // namespace ccml
