// Telemetry recorders, fed by the observability bus (src/obs).
//
// These produce exactly the series the paper plots: per-job throughput over
// time (Fig. 1b/1c), per-job link utilization across iterations (Fig. 2) and
// iteration-time CDFs (Fig. 1d).
//
// Split of responsibilities: TraceThroughputSampler is the one NetObserver
// that integrates per-link/per-job bit progress every fluid step and
// publishes time-weighted kLinkThroughput / kLinkQueue samples onto the bus;
// LinkThroughputRecorder and IterationRecorder are plain TraceSinks that
// consume bus events.  bind_trace_bus() wires a bus to a network and spins
// up the sampler when any sink asks for sampled series.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/types.h"
#include "obs/trace_bus.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/units.h"

namespace ccml {

/// Integrates per-link, per-job bit progress every fluid step and publishes
/// time-weighted kLinkThroughput (link total, then one event per job share)
/// and kLinkQueue samples at the sinks' negotiated cadence.  Links currently
/// in use are sampled automatically; `watch` forces specific links into the
/// series even while idle (their samples report zero).
///
/// Quiescence-compatible (unless a non-compatible sink vetoes it): an idle
/// gap contributes exactly zero bits to every window, so the samples
/// synthesized in on_idle_gap() are bit-identical to having stepped through
/// the gap — the regression test in net_observer_test.cpp holds this exact.
class TraceThroughputSampler : public NetObserver {
 public:
  TraceThroughputSampler(TraceBus& bus, Duration cadence,
                         std::vector<LinkId> watch, bool quiescence_ok);

  void on_step(const Network& net, TimePoint now) override;
  void on_idle_gap(const Network& net, TimePoint from, TimePoint to) override;
  bool quiescence_compatible() const override { return quiescence_ok_; }

 private:
  struct LinkAcc {
    double total_bits = 0.0;
    std::map<std::int32_t, double> job_bits;  // JobId value -> bits
    Gauge* queue_gauge = nullptr;
  };
  /// Emits one sample batch at `t` and resets the window.  `idle` marks a
  /// gap-synthesized batch (queues are drained by definition).
  void emit_samples(const Network& net, TimePoint t, bool idle);

  TraceBus& bus_;
  Duration cadence_;
  bool quiescence_ok_;
  Duration accumulated_ = Duration::zero();
  std::map<std::int32_t, LinkAcc> links_;  // LinkId value -> window state
};

/// Binds `bus` to `net`: installs the bus on the network (so net/cc/workload
/// /faults producers publish), and when any sink declares a sample cadence,
/// attaches a TraceThroughputSampler at the minimum declared cadence
/// watching the union of the sinks' requested links.  Returns the sampler
/// (nullptr when no sink samples); the caller keeps it alive for the run.
std::unique_ptr<TraceThroughputSampler> bind_trace_bus(TraceBus& bus,
                                                       Network& net);

/// Samples the total and per-job throughput crossing one link at a fixed
/// interval (time-weighted average over the interval).  Consumes the
/// kLinkThroughput events published by the TraceThroughputSampler.
class LinkThroughputRecorder : public TraceSink {
 public:
  LinkThroughputRecorder(LinkId link, Duration interval);

  /// Subscribes to `bus`; call once before the run.  Throws std::logic_error
  /// when attached twice.
  void attach(TraceBus& bus);

  // TraceSink: declare the sampling this recorder needs.
  Duration sample_cadence() const override { return interval_; }
  std::vector<LinkId> sampled_links() const override { return {link_}; }
  void on_event(const TraceEvent& ev) override;

  struct Sample {
    TimePoint time;                       ///< end of the interval
    Rate total;                           ///< all traffic on the link
    std::map<JobId, Rate> per_job;        ///< split by flow job tag
  };
  const std::vector<Sample>& samples() const { return samples_; }

  /// All job ids ever seen on the link, sorted.
  std::vector<JobId> jobs_seen() const;

 private:
  LinkId link_;
  Duration interval_;
  std::vector<Sample> samples_;
  std::vector<JobId> jobs_seen_;  // sorted
  bool attached_ = false;
};

/// Collects iteration durations per job into CDFs.  Subscribe via attach()
/// to consume kIteration events from a bus, or feed it manually with
/// record().
class IterationRecorder : public TraceSink {
 public:
  /// Subscribes to `bus`; throws std::logic_error when attached twice.
  void attach(TraceBus& bus);

  void on_event(const TraceEvent& ev) override;

  void record(JobId job, Duration iteration);

  /// Throws std::out_of_range naming the job when it was never recorded.
  const Cdf& cdf(JobId job) const;
  bool has(JobId job) const { return cdfs_.contains(job); }
  std::vector<JobId> jobs() const;

  /// Median iteration time in milliseconds.
  double median_ms(JobId job) const { return cdf(job).median(); }
  double mean_ms(JobId job) const { return cdf(job).mean(); }

 private:
  std::map<JobId, Cdf> cdfs_;
  bool attached_ = false;
};

}  // namespace ccml
