#include "telemetry/recorders.h"

#include <algorithm>
#include <stdexcept>

namespace ccml {

// --- TraceThroughputSampler ------------------------------------------------

TraceThroughputSampler::TraceThroughputSampler(TraceBus& bus, Duration cadence,
                                               std::vector<LinkId> watch,
                                               bool quiescence_ok)
    : bus_(bus), cadence_(cadence), quiescence_ok_(quiescence_ok) {
  if (!cadence.is_positive()) {
    throw std::invalid_argument(
        "TraceThroughputSampler: sample cadence must be positive");
  }
  // Seed the watch list so idle links report (zero) samples from the start.
  for (const LinkId l : watch) links_[l.value];
}

void TraceThroughputSampler::on_step(const Network& net, TimePoint now) {
  const Duration dt = net.config().step;
  const std::span<const double> rates = net.rates_bps();
  for (const LinkId lid : net.links_in_use()) {
    LinkAcc& acc = links_[lid.value];
    for (const std::uint32_t slot : net.flow_slots_on_link(lid)) {
      const double bits = rates[slot] * dt.to_seconds();
      acc.total_bits += bits;
      acc.job_bits[net.flow_at(slot).spec.job.value] += bits;
    }
  }
  accumulated_ += dt;
  if (accumulated_ >= cadence_) emit_samples(net, now, false);
}

void TraceThroughputSampler::on_idle_gap(const Network& net, TimePoint from,
                                         TimePoint to) {
  // Nothing moved during the gap, so each skipped step would have added
  // exactly zero bits; replay the emission schedule in closed form instead
  // of iterating the steps.
  const Duration dt = net.config().step;
  std::int64_t steps = (to - from).ns() / dt.ns();
  TimePoint t = from;
  while (steps > 0) {
    std::int64_t need =
        ((cadence_ - accumulated_).ns() + dt.ns() - 1) / dt.ns();
    if (need < 1) need = 1;
    if (need > steps) {
      accumulated_ += dt * steps;
      return;
    }
    accumulated_ += dt * need;
    t = t + dt * need;
    emit_samples(net, t, /*idle=*/true);
    steps -= need;
  }
}

void TraceThroughputSampler::emit_samples(const Network& net, TimePoint t,
                                          bool idle) {
  const double secs = accumulated_.to_seconds();
  for (auto& [lv, acc] : links_) {
    const LinkId lid{lv};
    TraceEvent ev;
    ev.time = t;
    ev.kind = TraceEventKind::kLinkThroughput;
    ev.link = lid;
    ev.value = secs > 0.0 ? acc.total_bits / secs : 0.0;
    bus_.emit(ev);
    acc.total_bits = 0.0;
    // Keep keys so every batch reports every job (zeros included).
    for (auto& [jv, bits] : acc.job_bits) {
      TraceEvent je = ev;
      je.job = JobId{jv};
      je.value = secs > 0.0 ? bits / secs : 0.0;
      bus_.emit(je);
      bits = 0.0;
    }
    TraceEvent qe;
    qe.time = t;
    qe.kind = TraceEventKind::kLinkQueue;
    qe.link = lid;
    // During an idle gap the policy is quiescent, i.e. queues are drained.
    qe.value = idle ? 0.0 : net.policy().link_queue(lid).count();
    bus_.emit(qe);
    if (acc.queue_gauge == nullptr) {
      acc.queue_gauge =
          &bus_.gauge("net.link" + std::to_string(lv) + ".queue_bytes");
    }
    acc.queue_gauge->set(qe.value);
  }
  accumulated_ = Duration::zero();
}

std::unique_ptr<TraceThroughputSampler> bind_trace_bus(TraceBus& bus,
                                                       Network& net) {
  net.set_trace_bus(&bus);
  const Duration cadence = bus.sample_cadence();
  if (!cadence.is_positive()) return nullptr;
  auto sampler = std::make_unique<TraceThroughputSampler>(
      bus, cadence, bus.sampled_links(), bus.sinks_quiescence_compatible());
  net.add_observer(*sampler);
  return sampler;
}

// --- LinkThroughputRecorder ------------------------------------------------

LinkThroughputRecorder::LinkThroughputRecorder(LinkId link, Duration interval)
    : link_(link), interval_(interval) {
  if (!interval.is_positive()) {
    throw std::invalid_argument(
        "LinkThroughputRecorder: interval must be positive");
  }
}

void LinkThroughputRecorder::attach(TraceBus& bus) {
  if (attached_) {
    throw std::logic_error(
        "LinkThroughputRecorder::attach: recorder is already attached to a "
        "trace bus");
  }
  attached_ = true;
  bus.add_sink(*this);
}

void LinkThroughputRecorder::on_event(const TraceEvent& ev) {
  if (ev.kind != TraceEventKind::kLinkThroughput || ev.link != link_) return;
  if (!ev.job.valid()) {
    // Link total: opens a new sample; per-job shares follow at the same
    // timestamp.
    Sample s;
    s.time = ev.time;
    s.total = Rate::bps(ev.value);
    samples_.push_back(std::move(s));
    return;
  }
  if (samples_.empty() || samples_.back().time != ev.time) return;
  samples_.back().per_job[ev.job] = Rate::bps(ev.value);
  const auto pos =
      std::lower_bound(jobs_seen_.begin(), jobs_seen_.end(), ev.job);
  if (pos == jobs_seen_.end() || *pos != ev.job) jobs_seen_.insert(pos, ev.job);
}

std::vector<JobId> LinkThroughputRecorder::jobs_seen() const {
  return jobs_seen_;
}

// --- IterationRecorder -----------------------------------------------------

void IterationRecorder::attach(TraceBus& bus) {
  if (attached_) {
    throw std::logic_error(
        "IterationRecorder::attach: recorder is already attached to a trace "
        "bus");
  }
  attached_ = true;
  bus.add_sink(*this);
}

void IterationRecorder::on_event(const TraceEvent& ev) {
  if (ev.kind != TraceEventKind::kIteration) return;
  record(ev.job, Duration::from_millis_f(ev.value));
}

void IterationRecorder::record(JobId job, Duration iteration) {
  cdfs_[job].add(iteration.to_millis());
}

const Cdf& IterationRecorder::cdf(JobId job) const {
  const auto it = cdfs_.find(job);
  if (it == cdfs_.end()) {
    throw std::out_of_range(
        "IterationRecorder::cdf: no iterations recorded for job " +
        std::to_string(job.value) + " (recorded jobs: " +
        std::to_string(cdfs_.size()) + ")");
  }
  return it->second;
}

std::vector<JobId> IterationRecorder::jobs() const {
  std::vector<JobId> out;
  for (const auto& [job, _] : cdfs_) out.push_back(job);
  return out;
}

}  // namespace ccml
