#include "telemetry/recorders.h"

#include <cassert>

namespace ccml {

LinkThroughputRecorder::LinkThroughputRecorder(LinkId link, Duration interval)
    : link_(link), interval_(interval) {
  assert(interval.is_positive());
}

void LinkThroughputRecorder::attach(Network& net) {
  assert(!attached_);
  attached_ = true;
  window_start_ = net.sim().now();
  net.add_step_observer(
      [this](const Network& n, TimePoint now) { on_step(n, now); });
}

void LinkThroughputRecorder::on_step(const Network& net, TimePoint now) {
  const Duration dt = net.config().step;
  // Accumulate bit-time for this step.
  for (const FlowId fid : net.flows_on_link(link_)) {
    const Flow& f = net.flow(fid);
    const double bits = f.rate.bits_per_sec() * dt.to_seconds();
    total_bits_ += bits;
    job_bits_[f.spec.job] += bits;
  }
  accumulated_ += dt;
  if (accumulated_ >= interval_) {
    Sample s;
    s.time = now;
    const double secs = accumulated_.to_seconds();
    s.total = Rate::bps(total_bits_ / secs);
    for (const auto& [job, bits] : job_bits_) {
      s.per_job[job] = Rate::bps(bits / secs);
    }
    samples_.push_back(std::move(s));
    accumulated_ = Duration::zero();
    total_bits_ = 0.0;
    // Keep keys so every sample reports every job (zeros included).
    for (auto& [job, bits] : job_bits_) bits = 0.0;
    window_start_ = now;
  }
}

std::vector<JobId> LinkThroughputRecorder::jobs_seen() const {
  std::vector<JobId> out;
  for (const auto& [job, _] : job_bits_) out.push_back(job);
  return out;
}

void IterationRecorder::record(JobId job, Duration iteration) {
  cdfs_[job].add(iteration.to_millis());
}

const Cdf& IterationRecorder::cdf(JobId job) const {
  const auto it = cdfs_.find(job);
  assert(it != cdfs_.end());
  return it->second;
}

std::vector<JobId> IterationRecorder::jobs() const {
  std::vector<JobId> out;
  for (const auto& [job, _] : cdfs_) out.push_back(job);
  return out;
}

}  // namespace ccml
