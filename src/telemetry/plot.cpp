#include "telemetry/plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ccml {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
}

std::string render_plot(const std::vector<Series>& series,
                        PlotOptions options) {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (!std::isfinite(xmin) || !std::isfinite(ymin)) return "(no data)\n";
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  const int W = options.width, H = options.height;
  std::vector<std::string> grid(H, std::string(W, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char g = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& [x, y] : series[si].points) {
      const int col = static_cast<int>((x - xmin) / (xmax - xmin) * (W - 1));
      const int row = static_cast<int>((y - ymin) / (ymax - ymin) * (H - 1));
      grid[H - 1 - row][col] = g;
    }
  }

  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%10.3g +", ymax);
  out += buf;
  out += std::string(W, '-') + "\n";
  for (int r = 0; r < H; ++r) {
    out += "           |" + grid[r] + "\n";
  }
  std::snprintf(buf, sizeof(buf), "%10.3g +", ymin);
  out += buf;
  out += std::string(W, '-') + "\n";
  std::snprintf(buf, sizeof(buf), "            %-12.4g%*s%12.4g  (%s)\n", xmin,
                W - 24, "", xmax, options.x_label.c_str());
  out += buf;
  for (std::size_t si = 0; si < series.size(); ++si) {
    std::snprintf(buf, sizeof(buf), "            %c = %s\n",
                  kGlyphs[si % sizeof(kGlyphs)], series[si].name.c_str());
    out += buf;
  }
  return out;
}

Series cdf_series(std::string name, const Cdf& cdf, std::size_t points) {
  Series s;
  s.name = std::move(name);
  for (const auto& [value, frac] : cdf.curve(points)) {
    s.points.emplace_back(value, frac);
  }
  return s;
}

std::string render_circle(const std::vector<CircularIntervalSet>& rings,
                          const std::vector<char>& glyphs, int radius) {
  const int R = radius;
  const int W = 2 * (R + static_cast<int>(rings.size()) * 2) + 3;
  const int H = W;
  const double cx = W / 2.0, cy = H / 2.0;
  std::vector<std::string> grid(H, std::string(W, ' '));

  for (std::size_t ri = 0; ri < rings.size(); ++ri) {
    const CircularIntervalSet& set = rings[ri];
    const double rr = R + 2.0 * static_cast<double>(ri);
    const double per = static_cast<double>(set.perimeter().ns());
    const int steps = 360;
    for (int a = 0; a < steps; ++a) {
      // Counter-clockwise from the positive x-axis, like the paper's figures.
      const double frac = static_cast<double>(a) / steps;
      const double theta = 2.0 * M_PI * frac;
      const int col = static_cast<int>(std::lround(cx + rr * std::cos(theta)));
      const int row = static_cast<int>(
          std::lround(cy - rr * 0.55 * std::sin(theta)));  // terminal aspect
      if (col < 0 || col >= W || row < 0 || row >= H) continue;
      const Duration pos = Duration::nanos(
          static_cast<std::int64_t>(frac * per));
      const bool covered = set.contains(pos);
      const char glyph = covered
                             ? (ri < glyphs.size() ? glyphs[ri] : '#')
                             : '.';
      if (grid[row][col] == ' ' || covered) grid[row][col] = glyph;
    }
  }

  std::string out;
  for (const std::string& line : grid) out += line + "\n";
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::string out;
  for (const double v : values) {
    int idx = hi == lo ? 0
                       : static_cast<int>((v - lo) / (hi - lo) * 7.999);
    idx = std::clamp(idx, 0, 7);
    out += kBlocks[idx];
  }
  return out;
}

}  // namespace ccml
