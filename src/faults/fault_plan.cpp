#include "faults/fault_plan.h"

#include <algorithm>

namespace ccml {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kStragglerOn:
      return "straggler-on";
    case FaultKind::kStragglerOff:
      return "straggler-off";
    case FaultKind::kJobPause:
      return "job-pause";
    case FaultKind::kJobResume:
      return "job-resume";
    case FaultKind::kJobArrive:
      return "job-arrive";
    case FaultKind::kJobDepart:
      return "job-depart";
  }
  return "unknown";
}

namespace {

FaultEvent link_event(TimePoint at, FaultKind kind, std::string link,
                      bool duplex, double factor = 0.0) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.link_name = std::move(link);
  ev.duplex = duplex;
  ev.factor = factor;
  return ev;
}

FaultEvent job_event(TimePoint at, FaultKind kind, JobId job,
                     double factor = 0.0) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.job = job;
  ev.factor = factor;
  return ev;
}

}  // namespace

FaultPlan& FaultPlan::link_down(TimePoint at, std::string link, bool duplex) {
  events.push_back(link_event(at, FaultKind::kLinkDown, std::move(link),
                              duplex));
  return *this;
}

FaultPlan& FaultPlan::link_up(TimePoint at, std::string link, bool duplex) {
  events.push_back(link_event(at, FaultKind::kLinkUp, std::move(link),
                              duplex));
  return *this;
}

FaultPlan& FaultPlan::flap(TimePoint at, Duration outage, std::string link,
                           bool duplex) {
  link_down(at, link, duplex);
  link_up(at + outage, std::move(link), duplex);
  return *this;
}

FaultPlan& FaultPlan::brownout(TimePoint at, Duration length, std::string link,
                               double factor, bool duplex) {
  events.push_back(link_event(at, FaultKind::kLinkDegrade, link, duplex,
                              factor));
  link_up(at + length, std::move(link), duplex);
  return *this;
}

FaultPlan& FaultPlan::straggler(TimePoint at, Duration length, JobId job,
                                double slowdown) {
  events.push_back(job_event(at, FaultKind::kStragglerOn, job, slowdown));
  events.push_back(job_event(at + length, FaultKind::kStragglerOff, job));
  return *this;
}

FaultPlan& FaultPlan::pause(TimePoint at, Duration length, JobId job) {
  events.push_back(job_event(at, FaultKind::kJobPause, job));
  events.push_back(job_event(at + length, FaultKind::kJobResume, job));
  return *this;
}

FaultPlan& FaultPlan::arrive(TimePoint at, JobId job) {
  events.push_back(job_event(at, FaultKind::kJobArrive, job));
  return *this;
}

FaultPlan& FaultPlan::depart(TimePoint at, JobId job) {
  events.push_back(job_event(at, FaultKind::kJobDepart, job));
  return *this;
}

void FaultPlan::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

TimePoint FaultPlan::first_event() const {
  TimePoint t = TimePoint::origin();
  bool first = true;
  for (const FaultEvent& ev : events) {
    if (first || ev.at < t) t = ev.at;
    first = false;
  }
  return t;
}

TimePoint FaultPlan::last_event() const {
  TimePoint t = TimePoint::origin();
  for (const FaultEvent& ev : events) {
    if (ev.at > t) t = ev.at;
  }
  return t;
}

bool FaultPlan::churns_jobs() const {
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultKind::kJobArrive || ev.kind == FaultKind::kJobDepart) {
      return true;
    }
  }
  return false;
}

}  // namespace ccml
