#include "faults/injector.h"

#include "ckpt/snapshot.h"

#include <stdexcept>
#include <string>

#include "obs/trace_bus.h"

namespace ccml {

FaultInjector::FaultInjector(Simulator& sim, Network& net, FaultPlan plan)
    : sim_(sim), net_(net), router_(net.topology()), plan_(std::move(plan)) {
  plan_.normalize();
  for (const FaultEvent& ev : plan_.events) {
    if (ev.kind == FaultKind::kLinkDegrade &&
        !(ev.factor > 0.0 && ev.factor < 1.0)) {
      throw std::invalid_argument(
          "fault plan: degrade factor must be in (0,1), got " +
          std::to_string(ev.factor));
    }
    if (ev.kind == FaultKind::kStragglerOn && !(ev.factor > 0.0)) {
      throw std::invalid_argument(
          "fault plan: straggler slowdown must be positive, got " +
          std::to_string(ev.factor));
    }
    if (ev.is_job_event() && !ev.job.valid()) {
      throw std::invalid_argument(std::string("fault plan: ") +
                                  to_string(ev.kind) +
                                  " event carries an invalid job id");
    }
    if (ev.is_link_event() && !ev.link.valid() && ev.link_name.empty()) {
      throw std::invalid_argument(std::string("fault plan: ") +
                                  to_string(ev.kind) +
                                  " event names no link");
    }
  }
}

void FaultInjector::bind_job(JobId id, TrainingJob& job) {
  jobs_[id.value] = &job;
}

bool FaultInjector::arrives_later(JobId id) const {
  for (const FaultEvent& ev : plan_.events) {
    if (ev.kind == FaultKind::kJobArrive && ev.job == id) return true;
  }
  return false;
}

std::pair<LinkId, LinkId> FaultInjector::resolve_link(
    const FaultEvent& ev) const {
  const Topology& topo = net_.topology();
  LinkId forward = ev.link;
  if (!forward.valid()) {
    for (const LinkInfo& li : topo.links()) {
      if (li.name == ev.link_name) {
        forward = li.id;
        break;
      }
    }
    if (!forward.valid()) {
      throw std::invalid_argument("fault plan: no link named '" +
                                  ev.link_name + "' in the topology");
    }
  }
  LinkId reverse;
  if (ev.duplex) {
    const LinkInfo& li = topo.link(forward);
    reverse = topo.find_link(li.dst, li.src);
  }
  return {forward, reverse};
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm called twice");
  armed_ = true;

  // Validate up front: every link name resolves, every job id is bound.
  for (const FaultEvent& ev : plan_.events) {
    if (ev.is_link_event()) {
      (void)resolve_link(ev);
    } else if (jobs_.find(ev.job.value) == jobs_.end()) {
      throw std::invalid_argument(
          std::string("fault plan: ") + to_string(ev.kind) +
          " event references job " + std::to_string(ev.job.value) +
          ", which is not bound to the injector");
    }
  }

  // Reroute-on-failure: ECMP over the surviving links, salted with the plan
  // seed and the flow id so the choice is deterministic per flow.
  net_.set_reroute_provider([this](const Flow& flow) {
    const auto usable = [this](LinkId l) { return net_.link_is_up(l); };
    const std::uint64_t hash = Router::flow_hash(
        flow.spec.src, flow.spec.dst,
        plan_.seed ^ static_cast<std::uint64_t>(flow.id.value));
    return router_.pick(flow.spec.src, flow.spec.dst, hash, usable);
  });

  // Mid-run arrivals: suspend the job now (its start timer is cancelled);
  // the kJobArrive event resumes it.
  for (const FaultEvent& ev : plan_.events) {
    if (ev.kind == FaultKind::kJobArrive) job_for(ev).pause();
  }

  for (const FaultEvent& ev : plan_.events) {
    sim_.schedule_at(ev.at, [this, ev] { apply(ev); });
  }
}

TrainingJob& FaultInjector::job_for(const FaultEvent& ev) {
  const auto it = jobs_.find(ev.job.value);
  if (it == jobs_.end()) {
    throw std::invalid_argument("fault plan: unbound job " +
                                std::to_string(ev.job.value));
  }
  return *it->second;
}

void FaultInjector::apply(const FaultEvent& ev) {
  FaultEvent executed = ev;
  switch (ev.kind) {
    case FaultKind::kLinkDown:
      executed.factor = 0.0;
      apply_link_event(executed);
      break;
    case FaultKind::kLinkUp:
      executed.factor = 1.0;
      apply_link_event(executed);
      break;
    case FaultKind::kLinkDegrade:
      apply_link_event(executed);
      break;
    case FaultKind::kStragglerOn:
      job_for(ev).set_compute_scale(ev.factor);
      break;
    case FaultKind::kStragglerOff:
      job_for(ev).set_compute_scale(1.0);
      break;
    case FaultKind::kJobPause:
      job_for(ev).pause();
      break;
    case FaultKind::kJobResume:
    case FaultKind::kJobArrive:
      job_for(ev).resume();
      break;
    case FaultKind::kJobDepart:
      job_for(ev).stop();
      break;
  }
  applied_.push_back(executed);
  if (TraceBus* bus = net_.trace_bus()) {
    const bool recovers = ev.kind == FaultKind::kLinkUp ||
                          ev.kind == FaultKind::kStragglerOff ||
                          ev.kind == FaultKind::kJobResume ||
                          ev.kind == FaultKind::kJobArrive;
    TraceEvent tev;
    tev.time = sim_.now();
    tev.kind = recovers ? TraceEventKind::kFaultRecover
                        : TraceEventKind::kFaultApply;
    tev.job = executed.is_job_event() ? executed.job : JobId{};
    tev.link = executed.is_link_event() ? executed.link : LinkId{};
    tev.value = executed.factor;
    tev.detail = to_string(executed.kind);
    bus->emit(tev);
    bus->counter(recovers ? "faults.recovered" : "faults.applied").add();
  }
  if (executed.is_link_event()) {
    if (on_topology_change) on_topology_change(executed);
  } else {
    if (on_jobset_change) on_jobset_change(executed);
  }
}

void FaultInjector::apply_link_event(FaultEvent& ev) {
  const auto [forward, reverse] = resolve_link(ev);
  ev.link = forward;
  if (ev.link_name.empty()) ev.link_name = net_.topology().link(forward).name;
  net_.set_link_capacity_factor(forward, ev.factor);
  if (reverse.valid()) net_.set_link_capacity_factor(reverse, ev.factor);
}

std::string FaultInjector::diagnose() const {
  std::string out;
  const Topology& topo = net_.topology();
  for (const LinkInfo& li : topo.links()) {
    const double f = net_.link_capacity_factor(li.id);
    if (f >= 1.0) continue;
    out += "  link ";
    out += li.name;
    out += f <= 0.0 ? " DOWN" : (" at factor " + std::to_string(f));
    out += '\n';
  }
  for (const FlowId fid : net_.parked_flows()) {
    const Flow& flow = net_.flow(fid);
    out += "  parked flow #" + std::to_string(fid.value);
    if (!flow.spec.label.empty()) out += " (" + flow.spec.label + ")";
    out += " " + topo.node(flow.spec.src).name + "->" +
           topo.node(flow.spec.dst).name + "\n";
  }
  if (out.empty()) out = "  no degraded links or parked flows\n";
  return "fault state:\n" + out;
}

std::string FaultInjector::serialize_state() const {
  StateBuf out;
  out.put_u8(armed_ ? 1 : 0);
  out.put_u64(applied_.size());
  for (const FaultEvent& ev : applied_) {
    out.put_i64(ev.at.since_origin().ns());
    out.put_u8(static_cast<std::uint8_t>(ev.kind));
    out.put_u32(static_cast<std::uint32_t>(ev.link.value));
    out.put_u8(ev.duplex ? 1 : 0);
    out.put_u32(static_cast<std::uint32_t>(ev.job.value));
    out.put_f64(ev.factor);
  }
  out.put_u64(plan_.events.size() - applied_.size());  // still pending
  return out.take();
}

}  // namespace ccml
