// Recovery metrics: did every job return to its pre-fault iteration cadence,
// how long did that take, and what did the disruption cost?
//
// compute_recovery() is pure post-processing over per-job iteration traces —
// it never touches the simulator — so the same definition serves scenarios,
// benches and tests.  Definitions:
//
//   baseline       median post-warmup iteration time among iterations that
//                  completed before the first fault (fallback: median of all
//                  iterations when the fault hits immediately).
//   converged      the trace ends in a stable tail: a suffix of iterations
//                  each within `tolerance` of baseline.
//   converged_after  index of the first iteration of that stable tail —
//                  every iteration from it onward is within tolerance.
//   reconverge_ms  start of the stable tail minus the end of the fault
//                  window (clamped at zero: a job already stable when the
//                  last fault clears recovered "instantly").
//   iterations_disrupted  iterations violating tolerance that ended after
//                  the first fault hit.
//   goodput_lost_mb  (expected iterations over the disruption span at
//                  baseline cadence - iterations actually completed in it)
//                  x per-iteration communication volume.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "util/time.h"

namespace ccml {

/// One job's observable history, extracted from TrainingJob after a run.
struct JobTrace {
  std::string name;
  std::vector<TimePoint> starts;    ///< per-iteration start times
  std::vector<Duration> durations;  ///< completed-iteration wall times
  double comm_mb_per_iter = 0.0;    ///< wire volume per iteration, MB
  bool departed = false;            ///< left the cluster mid-run (kJobDepart)
  std::size_t warmup = 2;           ///< iterations excluded from the baseline
};

struct JobRecovery {
  std::string job;
  double baseline_ms = 0.0;
  bool converged = false;
  std::size_t converged_after = 0;
  double reconverge_ms = 0.0;
  std::size_t iterations_disrupted = 0;
  double goodput_lost_mb = 0.0;
  bool departed = false;
};

struct RecoveryReport {
  TimePoint window_start;  ///< first fault event
  TimePoint window_end;    ///< last fault event
  std::vector<JobRecovery> jobs;

  /// Every non-departed job re-reached its baseline cadence.
  bool all_converged() const;
  /// Slowest job's reconvergence time (ms); 0 for an empty report.
  double max_reconverge_ms() const;
  double total_goodput_lost_mb() const;

  /// Multi-line human-readable rendering.
  std::string summary() const;
};

/// `tolerance` is the relative slack on iteration time (0.08 = within 8% of
/// baseline counts as converged).
RecoveryReport compute_recovery(const FaultPlan& plan,
                                std::span<const JobTrace> traces,
                                double tolerance = 0.08);

}  // namespace ccml
