#include "faults/recovery.h"

#include <algorithm>
#include <cstdio>

namespace ccml {

namespace {

double median_ms(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    m = (m + *std::max_element(v.begin(), v.begin() + mid)) / 2.0;
  }
  return m;
}

JobRecovery analyze(const JobTrace& trace, TimePoint window_start,
                    TimePoint window_end, double tolerance) {
  JobRecovery r;
  r.job = trace.name;
  r.departed = trace.departed;
  const std::size_t n = trace.durations.size();
  if (n == 0) return r;

  // Baseline: median post-warmup iteration that finished before the fault.
  std::vector<double> pre;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < trace.warmup || i >= trace.starts.size()) continue;
    if (trace.starts[i] + trace.durations[i] <= window_start) {
      pre.push_back(trace.durations[i].to_millis());
    }
  }
  if (pre.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      pre.push_back(trace.durations[i].to_millis());
    }
  }
  r.baseline_ms = median_ms(std::move(pre));
  const double limit = r.baseline_ms * (1.0 + tolerance);

  // Stable tail: longest suffix of within-tolerance iterations.
  std::size_t tail = n;
  while (tail > 0 && trace.durations[tail - 1].to_millis() <= limit) --tail;
  r.converged = tail < n;
  r.converged_after = tail;
  if (r.converged && tail < trace.starts.size()) {
    const Duration gap = trace.starts[tail] - window_end;
    r.reconverge_ms = std::max(0.0, gap.to_millis());
  }

  // Disruption accounting.
  TimePoint last_end = window_end;
  for (std::size_t i = 0; i < n && i < trace.starts.size(); ++i) {
    const TimePoint end = trace.starts[i] + trace.durations[i];
    if (end <= window_start) continue;
    if (trace.durations[i].to_millis() > limit) {
      ++r.iterations_disrupted;
      if (end > last_end) last_end = end;
    }
  }
  // Goodput lost over the disruption span (fault window plus the recovery
  // tail): what the job would have shipped at baseline cadence minus what it
  // actually completed.
  const TimePoint span_end = last_end;
  const double span_ms = (span_end - window_start).to_millis();
  if (span_ms > 0.0 && r.baseline_ms > 0.0) {
    double completed = 0.0;
    for (std::size_t i = 0; i < n && i < trace.starts.size(); ++i) {
      const TimePoint end = trace.starts[i] + trace.durations[i];
      if (end > window_start && end <= span_end) completed += 1.0;
    }
    const double expected = span_ms / r.baseline_ms;
    r.goodput_lost_mb =
        std::max(0.0, expected - completed) * trace.comm_mb_per_iter;
  }
  return r;
}

}  // namespace

bool RecoveryReport::all_converged() const {
  for (const JobRecovery& j : jobs) {
    if (!j.departed && !j.converged) return false;
  }
  return true;
}

double RecoveryReport::max_reconverge_ms() const {
  double worst = 0.0;
  for (const JobRecovery& j : jobs) {
    worst = std::max(worst, j.reconverge_ms);
  }
  return worst;
}

double RecoveryReport::total_goodput_lost_mb() const {
  double total = 0.0;
  for (const JobRecovery& j : jobs) total += j.goodput_lost_mb;
  return total;
}

std::string RecoveryReport::summary() const {
  char line[256];
  std::snprintf(line, sizeof(line), "recovery (fault window %.1f ms):\n",
                (window_end - window_start).to_millis());
  std::string out = line;
  for (const JobRecovery& j : jobs) {
    if (j.departed) {
      std::snprintf(line, sizeof(line), "  %-12s departed\n", j.job.c_str());
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-12s %s  baseline %.2f ms  reconverge %.2f ms  "
                    "disrupted %zu  lost %.1f MB\n",
                    j.job.c_str(), j.converged ? "converged " : "DIVERGED  ",
                    j.baseline_ms, j.reconverge_ms, j.iterations_disrupted,
                    j.goodput_lost_mb);
    }
    out += line;
  }
  return out;
}

RecoveryReport compute_recovery(const FaultPlan& plan,
                                std::span<const JobTrace> traces,
                                double tolerance) {
  RecoveryReport report;
  report.window_start = plan.first_event();
  report.window_end = plan.last_event();
  report.jobs.reserve(traces.size());
  for (const JobTrace& t : traces) {
    report.jobs.push_back(
        analyze(t, report.window_start, report.window_end, tolerance));
  }
  return report;
}

}  // namespace ccml
