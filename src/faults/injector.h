// Binds a FaultPlan to a live simulation and executes it.
//
// arm() resolves link names against the topology, validates that every job
// event has a bound TrainingJob, installs a link-state-aware reroute
// provider on the network (ECMP over the surviving topology, hashed with the
// plan seed so path choices are reproducible), holds back jobs that arrive
// mid-run, and schedules one simulator event per fault.
//
// Each executed event lands in applied() — the audit trail tests and
// telemetry read back — and fires the corresponding hook so the scenario
// layer can re-solve communication gates when the topology or job set
// changes.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "faults/fault_plan.h"
#include "net/network.h"
#include "net/routing.h"
#include "sim/simulator.h"
#include "workload/job.h"

namespace ccml {

class FaultInjector {
 public:
  /// Throws std::invalid_argument when a plan event is malformed (degrade
  /// factor outside (0,1), straggler slowdown not positive, invalid job id).
  FaultInjector(Simulator& sim, Network& net, FaultPlan plan);

  /// Registers the TrainingJob behind `id` so job events can reach it.  The
  /// job must outlive the injector's run.
  void bind_job(JobId id, TrainingJob& job);

  /// Fired after a link event was applied (topology changed).  The scenario
  /// layer uses this to drop or re-solve communication gates.
  std::function<void(const FaultEvent&)> on_topology_change;

  /// Fired after a job event was applied (job set or job behavior changed).
  std::function<void(const FaultEvent&)> on_jobset_change;

  /// Resolves, validates and schedules the plan.  Call once, after every
  /// job referenced by the plan is bound and started.  Jobs with a
  /// kJobArrive event are paused here and resume at their arrival time.
  /// Throws std::invalid_argument on unresolvable link names or unbound
  /// job ids.
  void arm();

  const FaultPlan& plan() const { return plan_; }

  /// Events executed so far, in execution order, with links resolved.
  const std::vector<FaultEvent>& applied() const { return applied_; }

  /// Jobs the plan holds back for mid-run arrival.
  bool arrives_later(JobId id) const;

  /// Human-readable diagnostic naming every down/degraded link and parked
  /// flow; suitable as a Simulator watchdog diagnostic provider.
  std::string diagnose() const;

  /// Checkpoint capture (src/ckpt): the applied-event audit trail plus the
  /// count of plan events still pending, as deterministic bytes.  Restore
  /// is by replay, so the pending events themselves live in the plan (part
  /// of the run spec); this section pins down *where* in the plan the run
  /// was cut, including an outage whose restoring event is still in flight.
  std::string serialize_state() const;

 private:
  void apply(const FaultEvent& ev);
  void apply_link_event(FaultEvent& ev);
  /// Resolves ev.link (and the reverse direction for duplex events) from
  /// ev.link_name; throws on unknown names.
  std::pair<LinkId, LinkId> resolve_link(const FaultEvent& ev) const;
  TrainingJob& job_for(const FaultEvent& ev);

  Simulator& sim_;
  Network& net_;
  Router router_;
  FaultPlan plan_;
  std::unordered_map<std::int32_t, TrainingJob*> jobs_;
  std::vector<FaultEvent> applied_;
  bool armed_ = false;
};

}  // namespace ccml
