// A deterministic, seeded script of faults to inject into a running
// simulation: link failures/restorations/brownouts, per-job straggler onset,
// and job churn (pause/resume, mid-run arrival and departure).
//
// The plan is pure data — time-ordered events plus a seed that salts the
// ECMP hash used when flows are rerouted around failures — so the same plan
// replayed against the same scenario yields a bit-identical trajectory, on
// one sweep thread or many.  FaultInjector (injector.h) binds a plan to a
// live Simulator/Network/job set and schedules the events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/types.h"
#include "util/time.h"

namespace ccml {

enum class FaultKind {
  kLinkDown,      ///< capacity factor -> 0 (flows park or reroute)
  kLinkUp,        ///< capacity factor -> 1 (parked flows requeue)
  kLinkDegrade,   ///< capacity factor -> `factor` in (0,1): brownout
  kStragglerOn,   ///< job's compute phases stretch by `factor`
  kStragglerOff,  ///< job's compute returns to nominal speed
  kJobPause,      ///< job suspends (flows aborted, timers cancelled)
  kJobResume,     ///< job resumes its interrupted phase
  kJobArrive,     ///< held-back job enters the cluster mid-run
  kJobDepart,     ///< job tears down permanently
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  TimePoint at;
  FaultKind kind = FaultKind::kLinkDown;

  // Link events: either a resolved id or a name ("swL->swR") looked up in
  // the topology when the injector arms.  `duplex` applies the change to
  // both directions of the cable.
  LinkId link;
  std::string link_name;
  bool duplex = true;

  // Job events.
  JobId job;

  /// kLinkDegrade: capacity factor in (0,1).  kStragglerOn: compute-time
  /// multiplier (> 1 slows the job down).
  double factor = 0.0;

  bool is_link_event() const {
    return kind == FaultKind::kLinkDown || kind == FaultKind::kLinkUp ||
           kind == FaultKind::kLinkDegrade;
  }
  bool is_job_event() const { return !is_link_event(); }
};

struct FaultPlan {
  /// Salts the ECMP hash used for reroute-on-failure path selection.
  std::uint64_t seed = 1;

  std::vector<FaultEvent> events;

  // --- Fluent builders -----------------------------------------------------
  // Each appends the corresponding event(s); chain freely and call
  // normalize() (or let the injector do it) before use.

  FaultPlan& link_down(TimePoint at, std::string link, bool duplex = true);
  FaultPlan& link_up(TimePoint at, std::string link, bool duplex = true);
  /// Down at `at`, restored `outage` later.
  FaultPlan& flap(TimePoint at, Duration outage, std::string link,
                  bool duplex = true);
  /// Brownout: capacity multiplied by `factor` for `length`, then restored.
  FaultPlan& brownout(TimePoint at, Duration length, std::string link,
                      double factor, bool duplex = true);
  /// Compute phases stretch by `slowdown` (e.g. 1.5) for `length`.
  FaultPlan& straggler(TimePoint at, Duration length, JobId job,
                       double slowdown);
  /// Job suspends for `length`, then resumes its interrupted phase.
  FaultPlan& pause(TimePoint at, Duration length, JobId job);
  /// Job held out of the initial set enters the cluster at `at`.
  FaultPlan& arrive(TimePoint at, JobId job);
  /// Job leaves the cluster permanently at `at`.
  FaultPlan& depart(TimePoint at, JobId job);

  bool empty() const { return events.empty(); }

  /// Stable-sorts events by time (equal-time events keep insertion order, so
  /// plans replay identically).
  void normalize();

  /// Earliest / latest event time; origin when the plan is empty.  Together
  /// they bound the disruption window recovery metrics measure against.
  TimePoint first_event() const;
  TimePoint last_event() const;

  /// True when some event arrives (or departs) a job, i.e. the job set is
  /// not static.
  bool churns_jobs() const;
};

}  // namespace ccml
