#include "cluster/scenario.h"

#include <memory>
#include <stdexcept>

#include "ckpt/checkpoint.h"
#include "ckpt/snapshot.h"
#include "core/schedule.h"
#include "faults/injector.h"
#include "net/routing.h"
#include "obs/trace_bus.h"
#include "sim/simulator.h"
#include "telemetry/recorders.h"
#include "workload/profiler.h"

namespace ccml {

Aggressiveness aggressive_knobs() {
  return {Duration::micros(55), Rate::mbps(80)};
}

Aggressiveness meek_knobs() { return {Duration::micros(300), Rate::mbps(40)}; }

Aggressiveness ranked_knobs(int rank) {
  switch (rank) {
    case 0: return {Duration::micros(55), Rate::mbps(80)};
    case 1: return {Duration::micros(150), Rate::mbps(55)};
    default: return {Duration::micros(300), Rate::mbps(40)};
  }
}

Rate scenario_goodput(const ScenarioConfig& config) {
  return config.nic * config.goodput_factor;
}

void validate_scenario(const std::vector<ScenarioJob>& jobs,
                       const ScenarioConfig& config) {
  if (jobs.empty()) {
    throw std::invalid_argument("scenario: needs at least one job");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ScenarioJob& j = jobs[i];
    if (j.name.empty()) {
      throw std::invalid_argument("scenario: job " + std::to_string(i) +
                                  " has an empty name");
    }
    if (j.weight <= 0.0) {
      throw std::invalid_argument("scenario: job '" + j.name +
                                  "' weight must be positive");
    }
    if (j.start_offset.is_negative()) {
      throw std::invalid_argument("scenario: job '" + j.name +
                                  "' start offset must be non-negative");
    }
    if (j.compute_jitter.is_negative()) {
      throw std::invalid_argument("scenario: job '" + j.name +
                                  "' compute jitter must be non-negative");
    }
    if (j.gate && !j.gate->period.is_positive()) {
      throw std::invalid_argument("scenario: job '" + j.name +
                                  "' gate period must be positive");
    }
  }
  if (!config.duration.is_positive()) {
    throw std::invalid_argument("scenario: duration must be positive");
  }
  if (!config.nic.is_positive()) {
    throw std::invalid_argument("scenario: NIC rate must be positive");
  }
  if (!config.bottleneck.is_positive()) {
    throw std::invalid_argument("scenario: bottleneck rate must be positive");
  }
  if (config.goodput_factor <= 0.0 || config.goodput_factor > 1.0) {
    throw std::invalid_argument("scenario: goodput factor must be in (0,1]");
  }
  if (config.fault_tolerance < 0.0) {
    throw std::invalid_argument(
        "scenario: fault tolerance must be non-negative");
  }
}

std::size_t ScenarioJobStats::converged_after(double target_ms,
                                              double tolerance) const {
  std::size_t first = iteration_ms.size();
  for (std::size_t i = iteration_ms.size(); i-- > 0;) {
    if (std::abs(iteration_ms[i] - target_ms) <= target_ms * tolerance) {
      first = i;
    } else {
      break;
    }
  }
  return first;
}

ScenarioResult run_dumbbell_scenario(const std::vector<ScenarioJob>& setups,
                                     const ScenarioConfig& config) {
  validate_scenario(setups, config);

  Simulator sim;
  const Topology topo = Topology::dumbbell(static_cast<int>(setups.size()),
                                           config.nic, config.bottleneck);
  NetworkConfig ncfg;
  ncfg.goodput_factor = config.goodput_factor;
  Network net(topo, make_policy(config.policy, config.transports), ncfg);
  net.attach(sim);
  std::unique_ptr<TraceThroughputSampler> sampler;
  if (config.trace != nullptr) {
    for (std::size_t i = 0; i < setups.size(); ++i) {
      const JobId id{static_cast<std::int32_t>(i)};
      config.trace->register_job(id, setups[i].name);
      // Dedicated-network baseline into the stream, so the trace alone is
      // enough for slowdown-vs-dedicated analytics (online or replayed).
      TraceEvent ev;
      ev.time = sim.now();
      ev.kind = TraceEventKind::kSoloBaseline;
      ev.job = id;
      ev.value =
          setups[i].profile.solo_iteration(scenario_goodput(config)).to_millis();
      config.trace->emit(ev);
    }
    sampler = bind_trace_bus(*config.trace, net);
  }
  if (config.instrument) config.instrument(net);
  const Router router(topo);
  const auto hosts = topo.hosts();

  std::vector<std::unique_ptr<TrainingJob>> jobs;
  for (std::size_t i = 0; i < setups.size(); ++i) {
    JobSpec spec;
    spec.id = JobId{static_cast<std::int32_t>(i)};
    spec.name = setups[i].name;
    spec.profile = setups[i].profile;
    spec.paths = {JobPath{hosts[2 * i], hosts[2 * i + 1],
                          router.pick(hosts[2 * i], hosts[2 * i + 1], 0)}};
    spec.cc_timer = setups[i].cc_timer;
    spec.cc_rai = setups[i].cc_rai;
    spec.priority = setups[i].priority;
    spec.weight = setups[i].weight;
    spec.gate = setups[i].gate;
    spec.compute_jitter = setups[i].compute_jitter;
    spec.jitter_seed = 0x9E37u * (i + 1);
    spec.start = TimePoint::origin() + setups[i].start_offset;
    jobs.push_back(std::make_unique<TrainingJob>(sim, net, std::move(spec)));
  }

  // --- Fault injection -----------------------------------------------------
  const bool faulty = !config.faults.empty();
  std::unique_ptr<FaultInjector> injector;
  std::vector<bool> departed(setups.size(), false);
  if (faulty) {
    injector = std::make_unique<FaultInjector>(sim, net, config.faults);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      injector->bind_job(jobs[i]->id(), *jobs[i]);
    }
  }

  // Mid-run gate re-solve: when a fault perturbs a *gated* scenario, the old
  // time-shifts are stale (severed links stall phases; a changed job set has
  // a different unified circle).  Drop gates while a link is down and
  // re-solve a fresh schedule, epoch'd at the current instant, on every
  // restoration or job-set change.
  bool any_gated = false;
  for (const ScenarioJob& s : setups) any_gated |= s.gate.has_value();
  any_gated |= config.flow_schedule;
  const auto resolve_gates = [&] {
    std::vector<std::size_t> members;
    std::vector<CommProfile> profiles;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (departed[i]) continue;
      members.push_back(i);
      profiles.push_back(
          analytic_profile(setups[i].profile, scenario_goodput(config)));
    }
    const auto clear_all = [&] {
      for (const std::size_t i : members) jobs[i]->set_gate(std::nullopt);
    };
    if (members.size() < 2) {
      clear_all();
      return;
    }
    CompatibilitySolver solver(config.solver);
    const SolverResult sr = solver.solve(profiles);
    if (config.trace != nullptr) {
      TraceEvent ev;
      ev.time = sim.now();
      ev.kind = TraceEventKind::kSolve;
      ev.value = sr.compatible ? 1.0 : 0.0;
      ev.value2 = sr.violation_fraction;
      config.trace->emit(ev);
      config.trace->counter("solver.solves").add();
    }
    if (!sr.compatible) {
      clear_all();
      return;
    }
    const FlowSchedule fs =
        make_flow_schedule(profiles, sr.rotations, sim.now());
    for (std::size_t k = 0; k < members.size(); ++k) {
      jobs[members[k]]->set_gate(CommGate{fs.epoch, fs.slots[k].start_offset,
                                          fs.slots[k].period,
                                          fs.slots[k].phase_offsets,
                                          fs.slots[k].window});
    }
  };
  if (injector) {
    injector->on_topology_change = [&](const FaultEvent& ev) {
      if (!any_gated || !config.resolve_gates_on_fault) return;
      if (ev.factor <= 0.0) {
        // Outage: a schedule solved for the healthy topology only hurts now.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
          if (!departed[i]) jobs[i]->set_gate(std::nullopt);
        }
      } else {
        resolve_gates();
      }
    };
    injector->on_jobset_change = [&](const FaultEvent& ev) {
      if (ev.kind == FaultKind::kJobDepart) {
        departed[static_cast<std::size_t>(ev.job.value)] = true;
      }
      if (!any_gated || !config.resolve_gates_on_fault) return;
      if (ev.kind == FaultKind::kJobDepart ||
          ev.kind == FaultKind::kJobArrive) {
        resolve_gates();
      }
    };
  }

  // --- Watchdog ------------------------------------------------------------
  WatchdogConfig wd = config.watchdog;
  if (faulty) {
    if (wd.max_events == 0) wd.max_events = 20'000'000;
    if (wd.max_sim_time.is_zero()) wd.max_sim_time = config.duration * 4;
  }
  if (wd.max_events != 0 || !wd.max_sim_time.is_zero()) {
    sim.set_watchdog(wd, [&net, &injector] {
      std::string out =
          injector ? injector->diagnose() : std::string("fault state: none\n");
      out += "  active flows: " + std::to_string(net.active_flows().size()) +
             ", parked: " + std::to_string(net.parked_flows().size()) + "\n";
      return out;
    });
  }

  // CASSINI-style start-of-run flow schedule: solve once for the full job
  // set and gate everyone before the first iteration.
  if (config.flow_schedule) resolve_gates();
  for (auto& j : jobs) j->start();
  if (injector) injector->arm();

  // --- Checkpointing -------------------------------------------------------
  // Registered at a fixed point (after arming, before the run) so record and
  // replay schedule the first tick from identical event-queue states.  The
  // provider lambdas capture run-local state by reference; the coordinator
  // must not tick after this function returns.
  if (config.checkpoint != nullptr) {
    CheckpointCoordinator& ck = *config.checkpoint;
    ck.add_provider("sim", [&sim] {
      StateBuf b;
      b.put_u64(sim.pending_events());
      return b.take();
    });
    ck.add_provider("net", [&net] { return net.serialize_state(); });
    ck.add_provider("cc", [&net] { return net.policy().serialize_state(); });
    ck.add_provider("jobs", [&jobs] {
      StateBuf b;
      b.put_u64(jobs.size());
      for (const auto& j : jobs) b.put_bytes(j->serialize_state());
      return b.take();
    });
    ck.add_provider("faults", [&injector] {
      return injector ? injector->serialize_state() : std::string();
    });
    if (config.on_cursor) {
      ck.on_cursor = [&sim, &net, &config] { config.on_cursor(sim, net); };
    }
    ck.install(sim, config.trace);
  }

  sim.run_for(config.duration);
  net.flush_observers();

  ScenarioResult result;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ScenarioJobStats stats;
    stats.name = setups[i].name;
    const auto& iters = jobs[i]->iteration_times();
    stats.iterations = iters.size();
    stats.iteration_ms.reserve(iters.size());
    for (const Duration d : iters) stats.iteration_ms.push_back(d.to_millis());
    for (std::size_t k = config.warmup_iterations; k < iters.size(); ++k) {
      stats.cdf.add(iters[k].to_millis());
    }
    if (!stats.cdf.empty()) {
      stats.mean_ms = stats.cdf.mean();
      stats.median_ms = stats.cdf.median();
      stats.p95_ms = stats.cdf.percentile(95);
    }
    result.jobs.push_back(std::move(stats));
  }
  if (injector) {
    result.faults_applied = injector->applied();
    std::vector<JobTrace> traces;
    traces.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobTrace t;
      t.name = setups[i].name;
      t.starts = jobs[i]->iteration_starts();
      t.durations = jobs[i]->iteration_times();
      t.comm_mb_per_iter = setups[i].profile.total_comm_bytes().count() / 1e6;
      t.departed = departed[i];
      t.warmup = config.warmup_iterations;
      traces.push_back(std::move(t));
    }
    result.recovery =
        compute_recovery(config.faults, traces, config.fault_tolerance);
  }
  return result;
}

}  // namespace ccml
