#include "cluster/scenario.h"

#include <memory>

#include "net/routing.h"
#include "sim/simulator.h"

namespace ccml {

Aggressiveness aggressive_knobs() {
  return {Duration::micros(55), Rate::mbps(80)};
}

Aggressiveness meek_knobs() { return {Duration::micros(300), Rate::mbps(40)}; }

Aggressiveness ranked_knobs(int rank) {
  switch (rank) {
    case 0: return {Duration::micros(55), Rate::mbps(80)};
    case 1: return {Duration::micros(150), Rate::mbps(55)};
    default: return {Duration::micros(300), Rate::mbps(40)};
  }
}

Rate scenario_goodput(const ScenarioConfig& config) {
  return config.nic * config.goodput_factor;
}

std::size_t ScenarioJobStats::converged_after(double target_ms,
                                              double tolerance) const {
  std::size_t first = iteration_ms.size();
  for (std::size_t i = iteration_ms.size(); i-- > 0;) {
    if (std::abs(iteration_ms[i] - target_ms) <= target_ms * tolerance) {
      first = i;
    } else {
      break;
    }
  }
  return first;
}

ScenarioResult run_dumbbell_scenario(const std::vector<ScenarioJob>& setups,
                                     const ScenarioConfig& config) {
  Simulator sim;
  const Topology topo = Topology::dumbbell(static_cast<int>(setups.size()),
                                           config.nic, config.bottleneck);
  NetworkConfig ncfg;
  ncfg.goodput_factor = config.goodput_factor;
  Network net(topo, make_policy(config.policy, config.dcqcn), ncfg);
  net.attach(sim);
  if (config.instrument) config.instrument(net);
  const Router router(topo);
  const auto hosts = topo.hosts();

  std::vector<std::unique_ptr<TrainingJob>> jobs;
  for (std::size_t i = 0; i < setups.size(); ++i) {
    JobSpec spec;
    spec.id = JobId{static_cast<std::int32_t>(i)};
    spec.name = setups[i].name;
    spec.profile = setups[i].profile;
    spec.paths = {JobPath{hosts[2 * i], hosts[2 * i + 1],
                          router.pick(hosts[2 * i], hosts[2 * i + 1], 0)}};
    spec.cc_timer = setups[i].cc_timer;
    spec.cc_rai = setups[i].cc_rai;
    spec.priority = setups[i].priority;
    spec.weight = setups[i].weight;
    spec.gate = setups[i].gate;
    spec.compute_jitter = setups[i].compute_jitter;
    spec.jitter_seed = 0x9E37u * (i + 1);
    spec.start = TimePoint::origin() + setups[i].start_offset;
    jobs.push_back(std::make_unique<TrainingJob>(sim, net, std::move(spec)));
  }
  for (auto& j : jobs) j->start();
  sim.run_for(config.duration);

  ScenarioResult result;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ScenarioJobStats stats;
    stats.name = setups[i].name;
    const auto& iters = jobs[i]->iteration_times();
    stats.iterations = iters.size();
    stats.iteration_ms.reserve(iters.size());
    for (const Duration d : iters) stats.iteration_ms.push_back(d.to_millis());
    for (std::size_t k = config.warmup_iterations; k < iters.size(); ++k) {
      stats.cdf.add(iters[k].to_millis());
    }
    if (!stats.cdf.empty()) {
      stats.mean_ms = stats.cdf.mean();
      stats.median_ms = stats.cdf.median();
      stats.p95_ms = stats.cdf.percentile(95);
    }
    result.jobs.push_back(std::move(stats));
  }
  return result;
}

}  // namespace ccml
