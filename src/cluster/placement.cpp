#include "cluster/placement.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "core/interference_graph.h"
#include "workload/job.h"

namespace ccml {

namespace {

/// Host inventory grouped by ToR.
struct Racks {
  std::vector<NodeId> tors;
  std::map<NodeId, std::vector<NodeId>> free_hosts;  // tor -> hosts

  explicit Racks(const Topology& topo) {
    for (const NodeId host : topo.hosts()) {
      const auto& ups = topo.links_from(host);
      assert(!ups.empty() && "host without uplink");
      const NodeId tor = topo.link(ups.front()).dst;
      if (!free_hosts.contains(tor)) tors.push_back(tor);
      free_hosts[tor].push_back(host);
    }
  }

  int free_in(NodeId tor) const {
    const auto it = free_hosts.find(tor);
    return it == free_hosts.end() ? 0 : static_cast<int>(it->second.size());
  }

  std::vector<NodeId> take(NodeId tor, int count) {
    auto& pool = free_hosts[tor];
    assert(static_cast<int>(pool.size()) >= count);
    std::vector<NodeId> out(pool.begin(), pool.begin() + count);
    pool.erase(pool.begin(), pool.begin() + count);
    return out;
  }

  void give_back(NodeId tor, const std::vector<NodeId>& hosts) {
    auto& pool = free_hosts[tor];
    pool.insert(pool.begin(), hosts.begin(), hosts.end());
  }

  NodeId tor_of(const Topology& topo, NodeId host) const {
    return topo.link(topo.links_from(host).front()).dst;
  }
};

/// Greedy multi-rack allocation: fewest racks first, biggest pools first.
std::optional<Placement> allocate(Racks& racks, int workers) {
  // Single rack if possible.
  for (const NodeId tor : racks.tors) {
    if (racks.free_in(tor) >= workers) {
      return Placement{racks.take(tor, workers), false};
    }
  }
  // Otherwise span racks, taking from the fullest first (stable so that
  // ties resolve in rack order — placement must be deterministic).
  std::vector<NodeId> order = racks.tors;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return racks.free_in(a) > racks.free_in(b);
  });
  int total = 0;
  for (const NodeId tor : order) total += racks.free_in(tor);
  if (total < workers) return std::nullopt;
  Placement p;
  p.spans_fabric = true;
  int need = workers;
  for (const NodeId tor : order) {
    const int take = std::min(need, racks.free_in(tor));
    if (take > 0) {
      const auto got = racks.take(tor, take);
      p.hosts.insert(p.hosts.end(), got.begin(), got.end());
      need -= take;
    }
    if (need == 0) break;
  }
  return p;
}

}  // namespace

std::vector<JobPath> ring_paths(const Topology& topo, const Router& router,
                                const std::vector<NodeId>& hosts,
                                std::uint64_t ecmp_salt) {
  std::vector<JobPath> paths;
  if (hosts.size() < 2) return paths;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const NodeId src = hosts[i];
    const NodeId dst = hosts[(i + 1) % hosts.size()];
    Route route = router.pick(src, dst, Router::flow_hash(src, dst, ecmp_salt));
    assert(!route.empty());
    paths.push_back({src, dst, std::move(route)});
  }
  (void)topo;
  return paths;
}

namespace {

/// Graph vertices for the placed jobs: each job's profile plus every link
/// its ring traverses, with `index[k]` mapping vertex k back to its request.
struct PlacedGraph {
  std::vector<GraphJob> jobs;
  std::vector<std::size_t> index;
};

PlacedGraph build_placed_graph(const Topology& topo, const Router& router,
                               const std::vector<JobRequest>& requests,
                               const std::vector<Placement>& placements) {
  PlacedGraph g;
  for (std::size_t j = 0; j < placements.size(); ++j) {
    if (placements[j].hosts.empty()) continue;
    std::set<std::int32_t> links;
    for (const JobPath& p :
         ring_paths(topo, router, placements[j].hosts, j)) {
      for (const LinkId lid : p.route.links) links.insert(lid.value);
    }
    GraphJob gj;
    gj.profile = requests[j].comm_profile;
    gj.links.assign(links.begin(), links.end());
    g.jobs.push_back(std::move(gj));
    g.index.push_back(j);
  }
  return g;
}

}  // namespace

std::vector<PlacementReport::SharedLink> audit_shared_links(
    const Topology& topo, const Router& router,
    const std::vector<JobRequest>& requests,
    const std::vector<Placement>& placements, const SolverOptions& solver) {
  const PlacedGraph g =
      build_placed_graph(topo, router, requests, placements);
  InterferenceGraphOptions options;
  options.solver = solver;
  const GraphResult r = InterferenceGraph(options).solve(g.jobs);
  std::vector<PlacementReport::SharedLink> out;
  out.reserve(r.links.size());
  for (const LinkVerdict& v : r.links) {
    PlacementReport::SharedLink sl;
    sl.link = LinkId{v.link};
    for (const std::size_t k : v.jobs) sl.jobs.push_back(g.index[k]);
    sl.violation = v.violation_fraction;
    sl.compatible = v.violation_fraction == 0.0;
    out.push_back(std::move(sl));
  }
  return out;
}

PlacementReport LocalityPlacement::place(
    const Topology& topo, std::vector<JobRequest> const& requests) {
  Racks racks(topo);
  PlacementReport report;
  for (const JobRequest& req : requests) {
    auto p = allocate(racks, req.workers);
    if (!p) {
      ++report.failed;
      report.placements.push_back({});
    } else {
      report.placements.push_back(std::move(*p));
    }
  }
  const Router router(topo);
  report.shared_links =
      audit_shared_links(topo, router, requests, report.placements, {});
  return report;
}

CompatibilityAwarePlacement::CompatibilityAwarePlacement(SolverOptions solver)
    : solver_options_(solver) {}

PlacementReport CompatibilityAwarePlacement::place(
    const Topology& topo, std::vector<JobRequest> const& requests) {
  Racks racks(topo);
  const Router router(topo);
  PlacementReport report;
  CompatibilitySolver cs(solver_options_);

  // Place jobs one at a time.  Rack-local placements can never congest the
  // fabric, so they are always accepted.  For spanning placements, try rack
  // pairs in a deterministic order and accept the first whose induced link
  // sharing is fully compatible; if none is, fall back to the least-bad one.
  for (std::size_t jr = 0; jr < requests.size(); ++jr) {
    const JobRequest& req = requests[jr];
    // Rack-local first.
    bool placed = false;
    for (const NodeId tor : racks.tors) {
      if (racks.free_in(tor) >= req.workers) {
        report.placements.push_back({racks.take(tor, req.workers), false});
        placed = true;
        break;
      }
    }
    if (placed) continue;

    // Must span.  Enumerate ordered rack pairs that can hold the job and
    // score each by its MARGINAL interference-graph cost: one joint solve
    // over the tentative cluster, counting links the newcomer crosses that
    // stay violated under globally consistent rotations, tie-broken by the
    // summed residual violation (jobs already placed are a constant
    // baseline, so comparing totals compares marginals).
    struct Option {
      std::vector<NodeId> hosts;
      std::vector<std::pair<NodeId, int>> taken;  // for rollback
      int incompatible_links = 0;
      double graph_cost = 0.0;
    };
    std::optional<Option> best;
    auto consider = [&](const std::vector<std::pair<NodeId, int>>& splits) {
      Option opt;
      for (const auto& [tor, cnt] : splits) {
        const auto got = racks.take(tor, cnt);
        opt.hosts.insert(opt.hosts.end(), got.begin(), got.end());
        opt.taken.emplace_back(tor, cnt);
      }
      std::vector<Placement> tentative = report.placements;
      tentative.push_back({opt.hosts, true});
      std::vector<JobRequest> so_far(requests.begin(),
                                     requests.begin() + jr + 1);
      const PlacedGraph g =
          build_placed_graph(topo, router, so_far, tentative);
      InterferenceGraphOptions igo;
      igo.solver = solver_options_;
      const GraphResult r = InterferenceGraph(igo).solve(g.jobs);
      opt.graph_cost = r.total_violation;
      for (const LinkVerdict& v : r.links) {
        if (v.violation_fraction == 0.0) continue;
        const bool involves_new = std::any_of(
            v.jobs.begin(), v.jobs.end(),
            [&](std::size_t k) { return g.index[k] == jr; });
        if (involves_new) ++opt.incompatible_links;
      }
      // Roll back; the winner is re-taken below.
      for (auto it = opt.taken.rbegin(); it != opt.taken.rend(); ++it) {
        std::vector<NodeId> back(opt.hosts.end() - it->second,
                                 opt.hosts.end());
        racks.give_back(it->first, back);
        opt.hosts.resize(opt.hosts.size() - it->second);
      }
      // opt.hosts was consumed by rollback bookkeeping; re-derive on accept.
      if (!best || opt.incompatible_links < best->incompatible_links ||
          (opt.incompatible_links == best->incompatible_links &&
           opt.graph_cost < best->graph_cost)) {
        opt.hosts.clear();
        best = opt;
      }
    };

    for (std::size_t a = 0; a < racks.tors.size() && (!best || best->incompatible_links > 0); ++a) {
      for (std::size_t b = 0; b < racks.tors.size(); ++b) {
        if (a == b) continue;
        const NodeId ta = racks.tors[a], tb = racks.tors[b];
        const int fa = racks.free_in(ta);
        if (fa == 0 || fa >= req.workers) continue;
        const int need_b = req.workers - fa;
        if (racks.free_in(tb) < need_b) continue;
        consider({{ta, fa}, {tb, need_b}});
        if (best && best->incompatible_links == 0) break;
      }
    }

    if (best) {
      Placement p;
      p.spans_fabric = true;
      for (const auto& [tor, cnt] : best->taken) {
        const auto got = racks.take(tor, cnt);
        p.hosts.insert(p.hosts.end(), got.begin(), got.end());
      }
      report.placements.push_back(std::move(p));
    } else {
      // No pair fits: greedy spanning fallback (same as locality).
      auto p = allocate(racks, req.workers);
      if (!p) {
        ++report.failed;
        report.placements.push_back({});
      } else {
        report.placements.push_back(std::move(*p));
      }
    }
  }
  report.shared_links = audit_shared_links(topo, router, requests,
                                           report.placements, solver_options_);
  return report;
}

}  // namespace ccml
