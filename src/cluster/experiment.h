// End-to-end cluster experiments: place jobs, build their ring-allreduce
// flows, run the fluid simulation under a chosen congestion-control policy,
// and report per-job iteration statistics — the harness behind the §4/§5
// benches and the cluster examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/factory.h"
#include "cluster/placement.h"
#include "core/schedule.h"
#include "core/solver.h"
#include "faults/fault_plan.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ccml {

struct ExperimentConfig {
  PolicyKind policy = PolicyKind::kDcqcn;
  /// Tunables for every transport family (cc/factory.h); make_policy picks
  /// the member matching `policy`.
  TransportConfig transports;
  NetworkConfig net;
  Duration run_time = Duration::seconds(20);
  /// Assign each job a unique strict priority (paper §4, direction (ii)).
  bool unique_priorities = false;
  /// Gate communication phases with solver time-shifts (§4, direction (iii)).
  /// Jobs sharing any link are grouped transitively (§5 cluster-level
  /// compatibility) and each group is solved on one unified circle.
  bool flow_schedule = false;
  SolverOptions solver;
  /// Scripted faults (src/faults).  JobIds in the plan are request indices.
  /// Link failures reroute flows over the surviving fabric (ECMP) or park
  /// them until restoration; with `flow_schedule` set, gates are re-solved
  /// whenever the topology or job set changes.
  FaultPlan faults;
  /// Abort-wedged-run guards; zero fields get defaults scaled to `run_time`
  /// whenever a fault plan is present.
  WatchdogConfig watchdog;
  /// Optional observability bus (src/obs); same contract as
  /// ScenarioConfig::trace — when set, the run publishes the full TraceEvent
  /// stream to the bus's sinks and registers request names for display.
  TraceBus* trace = nullptr;
};

struct JobOutcome {
  std::string name;
  std::size_t iterations = 0;
  double mean_ms = 0.0;
  double median_ms = 0.0;
  double p99_ms = 0.0;
  double solo_ms = 0.0;    ///< analytic dedicated-network iteration time
  double slowdown = 0.0;   ///< mean / solo
  bool placed = false;
  bool spans_fabric = false;
};

struct ExperimentResult {
  std::vector<JobOutcome> outcomes;
  PlacementReport placement;
  /// Fault events that executed during the run, with links resolved.
  std::vector<FaultEvent> faults_applied;
  /// Mean slowdown across placed jobs (the scheduler-quality scalar).
  double mean_slowdown() const;
  /// Worst per-job slowdown.
  double max_slowdown() const;
};

ExperimentResult run_cluster_experiment(const Topology& topo,
                                        const std::vector<JobRequest>& requests,
                                        PlacementPolicy& placement,
                                        const ExperimentConfig& config);

}  // namespace ccml
