// Job placement over a cluster fabric (paper §4, "Placing compatible jobs on
// links").
//
// Two policies are provided:
//  * LocalityPlacement — today's practice (Themis/Gandiva-style): pack each
//    job's workers under as few ToRs as possible, first-fit; ignores which
//    jobs end up sharing fabric links.
//  * CompatibilityAwarePlacement — same locality preference, but when a job
//    must span ToRs (and thus share fabric links), it is only co-located with
//    jobs whose communication profiles the CompatibilitySolver deems fully
//    compatible; otherwise alternative ToR pairs are tried.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/profile.h"
#include "core/solver.h"
#include "net/routing.h"
#include "net/topology.h"
#include "workload/job.h"
#include "workload/model_zoo.h"

namespace ccml {

struct JobRequest {
  std::string name;
  JobProfile profile;
  int workers = 2;
  /// Profile of the job on a dedicated network; used for compatibility
  /// checks.  Filled by callers (analytic or measured).
  CommProfile comm_profile;
};

struct Placement {
  std::vector<NodeId> hosts;  ///< one per worker; empty = placement failed
  bool spans_fabric = false;  ///< true when workers sit under multiple ToRs
};

struct PlacementReport {
  std::vector<Placement> placements;  ///< per request, in order
  /// For each fabric link that carries >= 2 jobs: the job indices sharing it.
  /// Verdicts come from ONE interference-graph solve over all placed jobs
  /// (core/interference_graph.h): every job uses a single rotation across
  /// all its links, so a link is `compatible` only when it is violation-free
  /// under that globally consistent assignment — per-link independent solves
  /// could each pick a different rotation for the same job and over-report
  /// compatibility.
  struct SharedLink {
    LinkId link;
    std::vector<std::size_t> jobs;
    bool compatible = false;    ///< violation-free under consistent rotations
    double violation = 0.0;     ///< residual violated fraction on this link
  };
  std::vector<SharedLink> shared_links;
  int failed = 0;  ///< requests that could not be placed
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;

  /// Places all requests on the topology's hosts (one worker per host).
  virtual PlacementReport place(const Topology& topo,
                                std::vector<JobRequest> const& requests) = 0;
};

class LocalityPlacement final : public PlacementPolicy {
 public:
  const char* name() const override { return "locality"; }
  PlacementReport place(const Topology& topo,
                        std::vector<JobRequest> const& requests) override;
};

class CompatibilityAwarePlacement final : public PlacementPolicy {
 public:
  explicit CompatibilityAwarePlacement(SolverOptions solver = {});
  const char* name() const override { return "compatibility-aware"; }
  PlacementReport place(const Topology& topo,
                        std::vector<JobRequest> const& requests) override;

 private:
  SolverOptions solver_options_;
};

/// Ring-allreduce paths for a placed job: worker i sends to worker i+1
/// (mod n).  Paths between hosts under one ToR stay rack-local; others cross
/// the fabric via ECMP.
std::vector<JobPath> ring_paths(const Topology& topo, const Router& router,
                                const std::vector<NodeId>& hosts,
                                std::uint64_t ecmp_salt);

/// Computes, for each link, which jobs' ring paths traverse it, and runs the
/// solver on every group of >= 2 jobs.  Used by reports and by the
/// compatibility-aware policy itself.
std::vector<PlacementReport::SharedLink> audit_shared_links(
    const Topology& topo, const Router& router,
    const std::vector<JobRequest>& requests,
    const std::vector<Placement>& placements, const SolverOptions& solver);

}  // namespace ccml
