#include "cluster/experiment.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

#include "faults/injector.h"
#include "obs/trace_bus.h"
#include "sim/simulator.h"
#include "telemetry/recorders.h"
#include "util/stats.h"
#include "workload/job.h"
#include "workload/profiler.h"

namespace ccml {

namespace {

/// Union-find over job indices, used to group jobs that (transitively) share
/// links — the paper's §5 cluster-level compatibility domains.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

double ExperimentResult::mean_slowdown() const {
  Summary s;
  for (const auto& o : outcomes) {
    if (o.placed && o.iterations > 0) s.add(o.slowdown);
  }
  return s.empty() ? 0.0 : s.mean();
}

double ExperimentResult::max_slowdown() const {
  double worst = 0.0;
  for (const auto& o : outcomes) {
    if (o.placed && o.iterations > 0) worst = std::max(worst, o.slowdown);
  }
  return worst;
}

ExperimentResult run_cluster_experiment(const Topology& topo,
                                        const std::vector<JobRequest>& requests,
                                        PlacementPolicy& placement,
                                        const ExperimentConfig& config) {
  ExperimentResult result;
  result.placement = placement.place(topo, requests);

  Simulator sim;
  Network net(topo, make_policy(config.policy, config.transports), config.net);
  net.attach(sim);
  std::unique_ptr<TraceThroughputSampler> sampler;
  if (config.trace != nullptr) {
    for (std::size_t j = 0; j < requests.size(); ++j) {
      config.trace->register_job(JobId{static_cast<std::int32_t>(j)},
                                 requests[j].name);
    }
    sampler = bind_trace_bus(*config.trace, net);
  }
  const Router router(topo);

  // Host NIC effective goodput, for solo baselines.
  Rate nic_goodput = Rate::zero();
  for (const NodeId host : topo.hosts()) {
    nic_goodput = net.effective_capacity(topo.links_from(host).front());
    break;
  }

  // Optional flow schedule: group jobs transitively by shared links, solve
  // each group on one unified circle, convert rotations to comm gates.  The
  // solve is reusable so faults that change the topology or job set can
  // request a fresh schedule mid-run (epoch'd at the current instant, with
  // departed jobs excluded).
  std::vector<std::optional<CommGate>> gates(requests.size());
  std::vector<Duration> start_offsets(requests.size(), Duration::zero());
  std::vector<bool> departed(requests.size(), false);
  const auto solve_gates = [&](TimePoint epoch,
                               std::vector<std::optional<CommGate>>& out,
                               std::vector<Duration>* offsets) {
    UnionFind uf(requests.size());
    for (const auto& sl : result.placement.shared_links) {
      for (std::size_t i = 1; i < sl.jobs.size(); ++i) {
        uf.unite(sl.jobs[0], sl.jobs[i]);
      }
    }
    std::map<std::size_t, std::vector<std::size_t>> groups;
    for (std::size_t j = 0; j < requests.size(); ++j) {
      if (!departed[j] && !result.placement.placements[j].hosts.empty()) {
        groups[uf.find(j)].push_back(j);
      }
    }
    CompatibilitySolver solver(config.solver);
    for (const auto& [root, members] : groups) {
      if (members.size() < 2) continue;
      std::vector<CommProfile> profiles;
      for (const std::size_t j : members) {
        profiles.push_back(requests[j].comm_profile);
      }
      const SolverResult sr = solver.solve(profiles);
      if (config.trace != nullptr) {
        TraceEvent ev;
        ev.time = epoch;
        ev.kind = TraceEventKind::kSolve;
        ev.value = sr.compatible ? 1.0 : 0.0;
        ev.value2 = sr.violation_fraction;
        config.trace->emit(ev);
        config.trace->counter("solver.solves").add();
      }
      // Gating an incompatible group is actively harmful: contention
      // stretches a communication phase past its slot, the job waits a full
      // period for the next one, and iteration times balloon.  Precise flow
      // scheduling is only applied where the solver proves compatibility;
      // incompatible groups fall back to ungated transport.
      if (!sr.compatible) continue;
      const FlowSchedule fs = make_flow_schedule(profiles, sr.rotations, epoch);
      for (std::size_t k = 0; k < members.size(); ++k) {
        const std::size_t j = members[k];
        out[j] = CommGate{fs.epoch, fs.slots[k].start_offset,
                          fs.slots[k].period, fs.slots[k].phase_offsets,
                          fs.slots[k].window};
        if (offsets) (*offsets)[j] = fs.slots[k].job_start_offset;
      }
    }
  };
  if (config.flow_schedule) {
    solve_gates(TimePoint::origin(), gates, &start_offsets);
  }

  std::vector<std::unique_ptr<TrainingJob>> jobs;
  std::vector<TrainingJob*> by_request(requests.size(), nullptr);
  for (std::size_t j = 0; j < requests.size(); ++j) {
    const Placement& p = result.placement.placements[j];
    if (p.hosts.empty()) continue;
    JobSpec spec;
    spec.id = JobId{static_cast<std::int32_t>(j)};
    spec.name = requests[j].name;
    spec.profile = requests[j].profile;
    spec.paths = ring_paths(topo, router, p.hosts, j);
    spec.split_bytes = false;  // ring: full wire bytes per worker path
    spec.start = TimePoint::origin() + start_offsets[j];
    if (config.unique_priorities) {
      spec.priority = static_cast<int>(j);
      // WFQ-style fallback weighting for policies that use weights.
      spec.weight = 1.0;
    }
    spec.gate = gates[j];
    if (spec.paths.empty()) {
      // Single-worker job: no network phase; synthesize a loop-back-free
      // profile with zero communication so it still reports iterations.
      spec.profile.comm_bytes = Bytes::zero();
      spec.paths = {JobPath{p.hosts[0], p.hosts[0], Route{}}};
    }
    jobs.push_back(std::make_unique<TrainingJob>(sim, net, std::move(spec)));
    by_request[j] = jobs.back().get();
  }

  // --- Fault injection -----------------------------------------------------
  const bool faulty = !config.faults.empty();
  std::unique_ptr<FaultInjector> injector;
  if (faulty) {
    injector = std::make_unique<FaultInjector>(sim, net, config.faults);
    for (std::size_t j = 0; j < requests.size(); ++j) {
      if (by_request[j]) {
        injector->bind_job(JobId{static_cast<std::int32_t>(j)},
                           *by_request[j]);
      }
    }
    const auto resolve_now = [&] {
      if (!config.flow_schedule) return;
      std::vector<std::optional<CommGate>> fresh(requests.size());
      solve_gates(sim.now(), fresh, nullptr);
      for (std::size_t j = 0; j < requests.size(); ++j) {
        if (by_request[j] && !departed[j]) by_request[j]->set_gate(fresh[j]);
      }
    };
    injector->on_topology_change = [&, resolve_now](const FaultEvent& ev) {
      if (!config.flow_schedule) return;
      if (ev.factor <= 0.0) {
        // Outage: schedules solved for the healthy fabric are stale.
        for (std::size_t j = 0; j < requests.size(); ++j) {
          if (by_request[j] && !departed[j]) {
            by_request[j]->set_gate(std::nullopt);
          }
        }
      } else {
        resolve_now();
      }
    };
    injector->on_jobset_change = [&, resolve_now](const FaultEvent& ev) {
      if (ev.kind == FaultKind::kJobDepart) {
        departed[static_cast<std::size_t>(ev.job.value)] = true;
      }
      if (ev.kind == FaultKind::kJobDepart ||
          ev.kind == FaultKind::kJobArrive) {
        resolve_now();
      }
    };
  }
  WatchdogConfig wd = config.watchdog;
  if (faulty) {
    if (wd.max_events == 0) wd.max_events = 20'000'000;
    if (wd.max_sim_time.is_zero()) wd.max_sim_time = config.run_time * 4;
  }
  if (wd.max_events != 0 || !wd.max_sim_time.is_zero()) {
    sim.set_watchdog(wd, [&net, &injector] {
      std::string out =
          injector ? injector->diagnose() : std::string("fault state: none\n");
      out += "  active flows: " + std::to_string(net.active_flows().size()) +
             ", parked: " + std::to_string(net.parked_flows().size()) + "\n";
      return out;
    });
  }

  // Single-worker jobs have an empty route, which Network::start_flow
  // rejects; they were given zero comm bytes above, and TrainingJob skips
  // flow creation entirely when comm_bytes is zero.
  for (auto& job : jobs) job->start();
  if (injector) injector->arm();
  sim.run_for(config.run_time);
  net.flush_observers();
  if (injector) result.faults_applied = injector->applied();

  for (std::size_t j = 0, placed_idx = 0; j < requests.size(); ++j) {
    JobOutcome out;
    out.name = requests[j].name;
    const Placement& p = result.placement.placements[j];
    out.placed = !p.hosts.empty();
    out.spans_fabric = p.spans_fabric;
    out.solo_ms =
        requests[j].profile.solo_iteration(nic_goodput).to_millis();
    if (out.placed) {
      const TrainingJob& job = *jobs[placed_idx++];
      const auto& iters = job.iteration_times();
      // Drop warmup iterations (phase sliding converges within a few).
      const std::size_t skip = std::min<std::size_t>(iters.size() / 5, 10);
      Cdf cdf;
      for (std::size_t i = skip; i < iters.size(); ++i) {
        cdf.add(iters[i].to_millis());
      }
      out.iterations = iters.size();
      if (!cdf.empty()) {
        out.mean_ms = cdf.mean();
        out.median_ms = cdf.median();
        out.p99_ms = cdf.percentile(99);
        out.slowdown = out.solo_ms > 0 ? out.mean_ms / out.solo_ms : 0.0;
      }
    }
    result.outcomes.push_back(std::move(out));
  }
  return result;
}

}  // namespace ccml
