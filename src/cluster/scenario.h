// A ready-made dumbbell "testbed": the paper's §2 setup — N training jobs,
// one job per sender/receiver host pair, all crossing one 50 Gbps bottleneck
// link.  Used by the benches, the examples and the integration tests.
//
// Scenarios optionally carry a FaultPlan (src/faults): scripted link flaps,
// brownouts, stragglers and job churn are injected mid-run, flows reroute or
// park-and-requeue, communication gates are re-solved when the topology or
// job set changes, and the result reports recovery metrics (time to
// reconverge, iterations disrupted, goodput lost).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cc/factory.h"
#include "core/solver.h"
#include "faults/fault_plan.h"
#include "faults/recovery.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "workload/job.h"
#include "workload/model_zoo.h"

namespace ccml {

class CheckpointCoordinator;

struct ScenarioJob {
  std::string name;
  JobProfile profile;
  /// Per-flow aggressiveness overrides (unfairness knobs); zero = policy
  /// default.  cc_timer: DCQCN timer T / BBR decision interval; cc_rai:
  /// additive step of DCQCN, TIMELY and Swift (see net/flow.h).
  Duration cc_timer = Duration::zero();
  Rate cc_rai = Rate::zero();
  int priority = 0;
  double weight = 1.0;                   ///< WFQ weight
  Duration compute_jitter = Duration::zero();  ///< per-iteration compute noise
  std::optional<CommGate> gate;
  Duration start_offset = Duration::zero();
};

struct ScenarioConfig {
  PolicyKind policy = PolicyKind::kDcqcn;
  /// Tunables for every transport family; make_policy picks the member
  /// matching `policy` (transports.dcqcn for the DCQCN variants, .timely,
  /// .swift, .bbr, .table — see cc/factory.h).
  TransportConfig transports;
  Duration duration = Duration::seconds(20);
  std::size_t warmup_iterations = 5;
  Rate nic = Rate::gbps(50);
  Rate bottleneck = Rate::gbps(50);
  double goodput_factor = 0.85;
  /// Optional observer attached to the network before the run (ad-hoc
  /// telemetry probes; see also `trace` for the structured path).
  std::function<void(Network&)> instrument;

  /// Optional observability bus (src/obs).  When set, the run publishes the
  /// full TraceEvent stream — flow lifecycles, DCQCN rate events, job
  /// phases/iterations, faults, solver runs — to the bus's sinks, registers
  /// job names for display, attaches a throughput sampler when any sink
  /// declares a sample cadence, and flushes trailing samples at run end.
  /// Quiescence-compatible sinks keep the kernel's idle fast-forward.
  TraceBus* trace = nullptr;

  /// Scripted faults to inject; empty = fault-free run.  The §2 bottleneck
  /// cable is named "swL->swR" in the dumbbell topology.
  FaultPlan faults;
  /// Abort-wedged-run guards.  Zero fields are filled with defaults scaled
  /// to `duration` whenever a fault plan is present.
  WatchdogConfig watchdog;
  /// Re-solve communication gates when a fault changes the topology or job
  /// set (only takes effect when at least one job is gated).
  bool resolve_gates_on_fault = true;
  /// Solve a compatibility-based flow schedule at run start and gate every
  /// job with it (the CASSINI-style interleaved mode), instead of requiring
  /// callers to pre-compute per-job gates.  Emits a kSolve event when a
  /// trace bus is bound, so measured interleaving can be compared against
  /// the solver's prediction.
  bool flow_schedule = false;
  /// Solver options used for mid-run gate re-solves.
  SolverOptions solver;
  /// Relative slack on iteration time for recovery convergence checks.
  double fault_tolerance = 0.08;

  /// Optional checkpoint/restore coordinator (src/ckpt).  The scenario
  /// registers its state-capture providers (sim, net, cc, jobs, faults) and
  /// installs the periodic ticks just before the run; the coordinator's
  /// mode decides whether snapshots are written (record), verified against
  /// a loaded one (resume), or captured only (branch).  Must outlive the
  /// run; its providers dangle afterwards — one coordinator per run.
  CheckpointCoordinator* checkpoint = nullptr;
  /// Replay modes: fired at the snapshot cursor, after state verification
  /// succeeded — the what-if variation hook (swap the transport, script
  /// extra faults, ...).
  std::function<void(Simulator&, Network&)> on_cursor;
};

/// Throws std::invalid_argument with a descriptive message when the job list
/// or config is malformed (no jobs, unnamed job, non-positive duration or
/// rates, goodput factor outside (0,1], negative start offset, ...).
void validate_scenario(const std::vector<ScenarioJob>& jobs,
                       const ScenarioConfig& config);

struct ScenarioJobStats {
  std::string name;
  std::size_t iterations = 0;
  double mean_ms = 0;
  double median_ms = 0;
  double p95_ms = 0;
  Cdf cdf;  ///< post-warmup iteration times in milliseconds
  std::vector<double> iteration_ms;  ///< every iteration, including warmup

  /// Index of the first iteration from which all remaining iterations stay
  /// within `tolerance` of `target_ms` (convergence to interleaved
  /// operation); returns iteration count if never reached.
  std::size_t converged_after(double target_ms, double tolerance = 0.05) const;
};

struct ScenarioResult {
  std::vector<ScenarioJobStats> jobs;
  /// Recovery metrics; present when the config carried a fault plan.
  std::optional<RecoveryReport> recovery;
  /// The fault events that actually executed, with links resolved.
  std::vector<FaultEvent> faults_applied;
};

/// Canonical aggressiveness presets for the "unfair DCQCN" scenarios; the
/// paper tuned T (125 us -> 100 us), we spread both T and R_AI to get the
/// same ~2:1 split at fluid granularity.
struct Aggressiveness {
  Duration timer;
  Rate rai;
};
Aggressiveness aggressive_knobs();
Aggressiveness meek_knobs();
/// A graded ladder: rank 0 is the most aggressive; higher ranks get slower
/// timers, used for >2-job groups ordered like Table 1 rows.
Aggressiveness ranked_knobs(int rank);

/// Runs the jobs on a shared dumbbell bottleneck and reports per-job
/// iteration statistics.  Throws std::invalid_argument on malformed input
/// (see validate_scenario) and SimulatorWedged when the watchdog trips.
ScenarioResult run_dumbbell_scenario(const std::vector<ScenarioJob>& jobs,
                                     const ScenarioConfig& config = {});

/// Effective per-NIC goodput of the scenario's links.
Rate scenario_goodput(const ScenarioConfig& config = {});

}  // namespace ccml
